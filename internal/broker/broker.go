package broker

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pinot/internal/controller"
	"pinot/internal/helix"
	"pinot/internal/pql"
	"pinot/internal/query"
	"pinot/internal/stream"
	"pinot/internal/table"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

// Config tunes a broker instance.
type Config struct {
	Cluster  string
	Instance string
	Strategy Strategy
	// TargetServers is T of Algorithm 1 (largeCluster strategy).
	TargetServers int
	// RoutingTables is C of Algorithm 2: how many tables to keep.
	RoutingTables int
	// RoutingCandidates is G of Algorithm 2: how many to generate.
	RoutingCandidates int
	// PartitionAware routes single-partition queries only to servers
	// holding the relevant partition's segments (paper Figure 16).
	PartitionAware bool
	// QueryTimeout bounds end-to-end query execution.
	QueryTimeout time.Duration
	// Seed fixes the routing RNG for reproducible tests (0 = random).
	Seed int64
}

func (c *Config) withDefaults() {
	if c.Strategy == "" {
		c.Strategy = StrategyBalanced
	}
	if c.TargetServers <= 0 {
		c.TargetServers = 3
	}
	if c.RoutingTables <= 0 {
		c.RoutingTables = 8
	}
	if c.RoutingCandidates <= 0 {
		c.RoutingCandidates = 10 * c.RoutingTables
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
}

// Broker routes queries to servers and merges their partial results.
type Broker struct {
	cfg      Config
	store    *zkmeta.Store
	sess     *zkmeta.Session
	registry transport.Registry

	rndMu sync.Mutex
	rnd   *rand.Rand

	mu          sync.Mutex
	routing     map[string]*routingState // resource → routing
	configs     map[string]*table.Config // resource → config cache
	watching    map[string]func()        // resource → external-view watch cancel
	cfgWatching map[string]func()        // resource → table-config watch cancel
	evCancel    func()
}

// New creates a broker. The registry resolves server instances to query
// clients.
func New(cfg Config, store *zkmeta.Store, registry transport.Registry) *Broker {
	cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Broker{
		cfg:         cfg,
		store:       store,
		registry:    registry,
		rnd:         rand.New(rand.NewSource(seed)),
		routing:     map[string]*routingState{},
		configs:     map[string]*table.Config{},
		watching:    map[string]func(){},
		cfgWatching: map[string]func(){},
	}
}

// Instance returns the broker's instance name.
func (b *Broker) Instance() string { return b.cfg.Instance }

// Start joins the cluster as a spectator: it registers its config and
// subscribes to external-view changes to keep routing tables fresh (paper
// 3.3.2).
func (b *Broker) Start() error {
	b.sess = b.store.NewSession()
	admin := helix.NewAdmin(b.sess, b.cfg.Cluster)
	if err := admin.CreateCluster(); err != nil {
		return err
	}
	if err := admin.RegisterInstance(helix.InstanceConfig{Instance: b.cfg.Instance, Tags: []string{"broker"}}); err != nil {
		return err
	}
	events, cancel := b.sess.WatchChildren(helix.ExternalViewsPath(b.cfg.Cluster))
	b.evCancel = cancel
	go func() {
		for range events {
			b.invalidateAll()
		}
	}()
	return nil
}

// Stop leaves the cluster.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.evCancel != nil {
		b.evCancel()
		b.evCancel = nil
	}
	for _, cancel := range b.watching {
		cancel()
	}
	b.watching = map[string]func(){}
	for _, cancel := range b.cfgWatching {
		cancel()
	}
	b.cfgWatching = map[string]func(){}
	b.mu.Unlock()
	if b.sess != nil {
		b.sess.Close()
	}
}

func (b *Broker) invalidateAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.routing = map[string]*routingState{}
}

func (b *Broker) invalidate(resource string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.routing, resource)
}

func (b *Broker) randIntn(n int) int {
	b.rndMu.Lock()
	defer b.rndMu.Unlock()
	return b.rnd.Intn(n)
}

// tableConfig reads (and caches) a resource's config; a miss means the
// resource does not exist.
func (b *Broker) tableConfig(resource string) (*table.Config, bool) {
	b.mu.Lock()
	if cfg, ok := b.configs[resource]; ok {
		b.mu.Unlock()
		return cfg, true
	}
	b.mu.Unlock()
	cfg, err := controller.ReadTableConfig(b.sess, b.cfg.Cluster, resource)
	if err != nil {
		return nil, false
	}
	b.mu.Lock()
	b.configs[resource] = cfg
	// Track config changes (schema evolution, paper 5.2) so the cache
	// never serves a stale schema.
	if _, ok := b.cfgWatching[resource]; !ok {
		events, cancel := b.sess.Watch(helix.PropertyStorePath(b.cfg.Cluster, "CONFIGS", "TABLE", resource))
		b.cfgWatching[resource] = cancel
		go func() {
			for range events {
				b.mu.Lock()
				delete(b.configs, resource)
				b.mu.Unlock()
			}
		}()
	}
	b.mu.Unlock()
	return cfg, true
}

// routingFor returns (building if needed) the routing state of a resource.
func (b *Broker) routingFor(resource string) (*routingState, error) {
	b.mu.Lock()
	rs, ok := b.routing[resource]
	b.mu.Unlock()
	if ok {
		return rs, nil
	}
	admin := helix.NewAdmin(b.sess, b.cfg.Cluster)
	ev, err := admin.ExternalViewOf(resource)
	if err != nil {
		return nil, err
	}
	si := segmentInstances{}
	for seg, replicas := range ev.Partitions {
		for inst, state := range replicas {
			// Both fully online replicas and consuming replicas
			// participate in query processing.
			if state == helix.StateOnline || state == helix.StateConsuming {
				si[seg] = append(si[seg], inst)
			}
		}
	}
	rs = &routingState{segments: si, segPartition: map[string]int{}}
	b.rndMu.Lock()
	switch b.cfg.Strategy {
	case StrategyLargeCluster:
		tables, err := filterRoutingTables(si, b.cfg.TargetServers, b.cfg.RoutingTables, b.cfg.RoutingCandidates, b.rnd)
		if err == nil {
			rs.tables = tables
		}
	default:
		rt, err := generateBalanced(si, b.rnd)
		if err == nil {
			rs.tables = []RoutingTable{rt}
		}
	}
	b.rndMu.Unlock()
	if len(rs.tables) == 0 && len(si) > 0 {
		return nil, fmt.Errorf("broker: could not build routing table for %s", resource)
	}
	// Partition map for partition-aware routing.
	if b.cfg.PartitionAware {
		if metas, err := controller.ReadSegmentMetas(b.sess, b.cfg.Cluster, resource); err == nil {
			for _, m := range metas {
				rs.segPartition[m.Name] = m.Partition
			}
		}
	}
	b.mu.Lock()
	b.routing[resource] = rs
	// Register a data watch so external-view updates refresh routing
	// (paper 3.3.2: "brokers listen to changes to the cluster state and
	// update their routing tables").
	if _, ok := b.watching[resource]; !ok {
		events, cancel := b.sess.Watch(helix.ExternalViewPath(b.cfg.Cluster, resource))
		b.watching[resource] = cancel
		go func() {
			for range events {
				b.invalidate(resource)
			}
		}()
	}
	b.mu.Unlock()
	return rs, nil
}

// timeBoundary computes the hybrid split point: the max time of the offline
// table's completed segments. Offline serves time < boundary, realtime
// serves time >= boundary (paper Figure 6).
func (b *Broker) timeBoundary(offlineResource string) (int64, bool) {
	metas, err := controller.ReadSegmentMetas(b.sess, b.cfg.Cluster, offlineResource)
	if err != nil || len(metas) == 0 {
		return 0, false
	}
	var max int64
	found := false
	for _, m := range metas {
		if m.Status == table.StatusDone {
			if !found || m.MaxTime > max {
				max = m.MaxTime
			}
			found = true
		}
	}
	return max, found
}

// Response is the broker's reply to a client.
type Response struct {
	*query.Result
	// ServersQueried counts the server fan-out across subqueries.
	ServersQueried int
}

// Execute parses PQL, performs hybrid rewriting, scatters the query and
// gathers the merged result (paper 3.3.3).
func (b *Broker) Execute(ctx context.Context, pqlText, tenant string) (*Response, error) {
	start := time.Now()
	q, err := pql.Parse(pqlText)
	if err != nil {
		return nil, err
	}
	offline := table.ResourceName(q.Table, table.Offline)
	realtime := table.ResourceName(q.Table, table.Realtime)
	offCfg, hasOffline := b.tableConfig(offline)
	rtCfg, hasRealtime := b.tableConfig(realtime)
	if !hasOffline && !hasRealtime {
		return nil, fmt.Errorf("broker: unknown table %q", q.Table)
	}

	type subquery struct {
		resource string
		cfg      *table.Config
		q        *pql.Query
	}
	var subs []subquery
	switch {
	case hasOffline && hasRealtime:
		// Hybrid rewrite around the time boundary (paper Figure 6).
		timeCol := offCfg.Schema.TimeColumn()
		boundary, ok := b.timeBoundary(offline)
		if ok && timeCol != "" {
			offQ := q.WithExtraFilter(pql.Comparison{Column: timeCol, Op: pql.OpLt, Value: boundary})
			rtQ := q.WithExtraFilter(pql.Comparison{Column: timeCol, Op: pql.OpGte, Value: boundary})
			subs = append(subs, subquery{offline, offCfg, offQ}, subquery{realtime, rtCfg, rtQ})
		} else {
			// No boundary to split on (no completed offline data, or
			// no shared time column): query both sides unrewritten.
			// The time column requirement of paper 3.3.3 is what
			// prevents double counting; without it, deduplication is
			// the operator's responsibility.
			subs = append(subs, subquery{offline, offCfg, q}, subquery{realtime, rtCfg, q})
		}
	case hasOffline:
		subs = append(subs, subquery{offline, offCfg, q})
	default:
		subs = append(subs, subquery{realtime, rtCfg, q})
	}

	ctx, cancel := context.WithTimeout(ctx, b.cfg.QueryTimeout)
	defer cancel()

	var merged *query.Intermediate
	var exceptions []string
	servers := 0
	for _, sub := range subs {
		res, exc, n, err := b.scatterGather(ctx, sub.resource, sub.cfg, sub.q, tenant)
		if err != nil {
			return nil, err
		}
		servers += n
		exceptions = append(exceptions, exc...)
		if merged == nil {
			merged = res
			continue
		}
		if res != nil {
			if err := merged.Merge(res); err != nil {
				return nil, err
			}
		}
	}
	if merged == nil {
		if len(exceptions) == 0 {
			return nil, fmt.Errorf("broker: no servers produced results")
		}
		// Every server failed: degrade to an empty partial result
		// (paper 3.3.3 step 7) rather than failing the query.
		merged = query.EmptyIntermediate(q)
	}
	final := merged.Finalize(q)
	final.Exceptions = exceptions
	final.Partial = len(exceptions) > 0
	final.TimeMillis = time.Since(start).Milliseconds()
	return &Response{Result: final, ServersQueried: servers}, nil
}

// scatterGather sends one rewritten subquery to the servers of a resource
// and merges their partial results.
func (b *Broker) scatterGather(ctx context.Context, resource string, cfg *table.Config, q *pql.Query, tenant string) (*query.Intermediate, []string, int, error) {
	rs, err := b.routingFor(resource)
	if err != nil {
		return nil, nil, 0, err
	}
	var rt RoutingTable
	b.rndMu.Lock()
	rt = rs.pick(b.rnd)
	b.rndMu.Unlock()
	if rt == nil {
		// Resource exists but has no queryable segments yet.
		return nil, nil, 0, nil
	}
	// Partition-aware pruning (paper 4.4): a single-partition query only
	// contacts servers holding that partition's segments.
	if b.cfg.PartitionAware && cfg.PartitionColumn != "" && cfg.NumPartitions > 0 {
		if value, ok := partitionFilterValue(q.Filter, cfg.PartitionColumn); ok {
			p := stream.PartitionFor([]byte(fmt.Sprint(value)), cfg.NumPartitions)
			rt = restrict(rt, func(seg string) bool {
				sp, known := rs.segPartition[seg]
				return !known || sp == -1 || sp == p
			})
		}
	}

	pqlText := q.String()
	type reply struct {
		instance string
		resp     *transport.QueryResponse
		err      error
	}
	replies := make(chan reply, len(rt))
	for instance, segs := range rt {
		go func(instance string, segs []string) {
			client, ok := b.registry.ServerClient(instance)
			if !ok {
				replies <- reply{instance: instance, err: fmt.Errorf("no client for %s", instance)}
				return
			}
			resp, err := client.Execute(ctx, &transport.QueryRequest{
				Resource: resource,
				PQL:      pqlText,
				Segments: segs,
				Tenant:   tenant,
			})
			replies <- reply{instance: instance, resp: resp, err: err}
		}(instance, segs)
	}

	var merged *query.Intermediate
	var exceptions []string
	for i := 0; i < len(rt); i++ {
		r := <-replies
		if r.err != nil {
			// Per paper 3.3.3 step 7: errors mark the result partial
			// rather than failing the query.
			exceptions = append(exceptions, fmt.Sprintf("server %s: %v", r.instance, r.err))
			continue
		}
		exceptions = append(exceptions, r.resp.Exceptions...)
		if merged == nil {
			merged = r.resp.Result
			continue
		}
		if err := merged.Merge(r.resp.Result); err != nil {
			return nil, nil, 0, err
		}
	}
	if merged == nil && len(exceptions) == len(rt) && len(rt) > 0 {
		// All servers failed for this subquery; still degrade
		// gracefully with an empty partial result.
		return nil, exceptions, len(rt), nil
	}
	return merged, exceptions, len(rt), nil
}

// partitionFilterValue extracts the value of a top-level equality predicate
// on the partition column (directly or inside an AND).
func partitionFilterValue(p pql.Predicate, column string) (any, bool) {
	switch n := p.(type) {
	case pql.Comparison:
		if n.Column == column && n.Op == pql.OpEq {
			return n.Value, true
		}
	case pql.And:
		for _, c := range n.Children {
			if v, ok := partitionFilterValue(c, column); ok {
				return v, true
			}
		}
	}
	return nil, false
}
