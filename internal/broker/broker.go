package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pinot/internal/controller"
	"pinot/internal/helix"
	"pinot/internal/metrics"
	"pinot/internal/pql"
	"pinot/internal/qcache"
	"pinot/internal/qctx"
	"pinot/internal/query"
	"pinot/internal/stream"
	"pinot/internal/table"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

// Config tunes a broker instance.
type Config struct {
	Cluster  string
	Instance string
	Strategy Strategy
	// TargetServers is T of Algorithm 1 (largeCluster strategy).
	TargetServers int
	// RoutingTables is C of Algorithm 2: how many tables to keep.
	RoutingTables int
	// RoutingCandidates is G of Algorithm 2: how many to generate.
	RoutingCandidates int
	// PartitionAware routes single-partition queries only to servers
	// holding the relevant partition's segments (paper Figure 16).
	PartitionAware bool
	// DisablePruning turns off broker-side segment pruning (time-range and
	// partition metadata) and its Stats accounting. Server-side pruning is
	// governed separately by the servers' plan options.
	DisablePruning bool
	// QueryTimeout bounds end-to-end query execution.
	QueryTimeout time.Duration
	// MaxRetries bounds how many times a failed scatter group is retried
	// against alternate replicas of its segments. 0 means the default of
	// one retry; -1 disables retries.
	MaxRetries int
	// RetryBackoff is the pause before each retry attempt.
	RetryBackoff time.Duration
	// HedgeDelay, when positive, sends a duplicate request to another
	// replica if a server has not answered within the delay, taking
	// whichever response arrives first (tail-latency hedging). 0 disables
	// hedging.
	HedgeDelay time.Duration
	// PerServerTimeout bounds each individual server attempt, carving the
	// query budget so a hung server leaves time for a retry. Defaults to
	// QueryTimeout divided among the retry attempts.
	PerServerTimeout time.Duration
	// Seed fixes the routing RNG for reproducible tests (0 = random).
	Seed int64
	// DisableResultCache turns off the broker-side result cache (the A/B
	// lever for benchmarking; the cache is ON by default). Cached entries
	// are keyed on the canonical PQL, tenant and routing version vector,
	// and invalidated precisely — never by TTL.
	DisableResultCache bool
	// ResultCacheBytes bounds the result cache's resident size
	// (0 = qcache.DefaultMaxBytes).
	ResultCacheBytes int64
	// ResultCachePolicy selects the eviction policy ("lru" default, or
	// "lfu").
	ResultCachePolicy string
	// Metrics receives the broker's instrumentation; nil means the
	// process-wide metrics.Default().
	Metrics *metrics.Registry
	// SlowLogSize bounds the slow-query ring served at /debug/queries
	// (0 = metrics.DefaultSlowLogSize).
	SlowLogSize int
}

func (c *Config) withDefaults() {
	if c.Strategy == "" {
		c.Strategy = StrategyBalanced
	}
	if c.TargetServers <= 0 {
		c.TargetServers = 3
	}
	if c.RoutingTables <= 0 {
		c.RoutingTables = 8
	}
	if c.RoutingCandidates <= 0 {
		c.RoutingCandidates = 10 * c.RoutingTables
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.PerServerTimeout <= 0 {
		attempts := c.MaxRetries + 1
		if attempts < 1 {
			attempts = 1
		}
		c.PerServerTimeout = c.QueryTimeout / time.Duration(attempts)
	}
}

// retries returns the effective retry budget (-1 disables).
func (c *Config) retries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

// Broker routes queries to servers and merges their partial results.
type Broker struct {
	cfg      Config
	store    zkmeta.Endpoint
	sess     zkmeta.Client
	registry transport.Registry
	met      *brokerMetrics
	slow     *metrics.SlowLog
	// badPQL retains the most recent rejected queries (parse failures)
	// for /debug/queries, so a misbehaving client can be diagnosed from
	// the broker without log access.
	badMu  sync.Mutex
	badPQL []ParseFailure
	// resultCache is the broker tier of the multi-tier cache: merged
	// immutable-portion results keyed on (canonical PQL, tenant, routing
	// version), scoped per resource. Nil when disabled.
	resultCache *qcache.Cache

	rndMu sync.Mutex
	rnd   *rand.Rand

	mu          sync.Mutex
	routing     map[string]*routingState // resource → routing
	configs     map[string]*table.Config // resource → config cache
	watching    map[string]func()        // resource → external-view watch cancel
	cfgWatching map[string]func()        // resource → table-config watch cancel
	evCancel    func()
}

// New creates a broker. The registry resolves server instances to query
// clients.
func New(cfg Config, store zkmeta.Endpoint, registry transport.Registry) *Broker {
	cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	b := &Broker{
		cfg:         cfg,
		store:       store,
		registry:    registry,
		met:         newBrokerMetrics(cfg.Metrics),
		slow:        metrics.NewSlowLog(cfg.SlowLogSize),
		rnd:         rand.New(rand.NewSource(seed)),
		routing:     map[string]*routingState{},
		configs:     map[string]*table.Config{},
		watching:    map[string]func(){},
		cfgWatching: map[string]func(){},
	}
	if !cfg.DisableResultCache {
		b.resultCache = qcache.New(qcache.Config{
			Tier:     "result",
			MaxBytes: cfg.ResultCacheBytes,
			Policy:   qcache.Policy(cfg.ResultCachePolicy),
			Metrics:  b.met.reg,
		})
	}
	return b
}

// Instance returns the broker's instance name.
func (b *Broker) Instance() string { return b.cfg.Instance }

// Metrics returns the registry this broker records into.
func (b *Broker) Metrics() *metrics.Registry { return b.met.reg }

// SlowQueries returns the slow-query log served at /debug/queries.
func (b *Broker) SlowQueries() *metrics.SlowLog { return b.slow }

// ParseFailure is one rejected query retained for /debug/queries: the text,
// the error, and — when the failure was a parse error — the position.
type ParseFailure struct {
	PQL   string `json:"pql"`
	Error string `json:"error"`
	// Line/Col/Offset locate the failure in the query text (1-based
	// line/col, byte offset); zero when the failure carried no position.
	Line   int    `json:"line,omitempty"`
	Col    int    `json:"col,omitempty"`
	Offset int    `json:"offset,omitempty"`
	Token  string `json:"token,omitempty"` // offending token, "" at end of input
}

// maxParseFailures bounds the rejected-query ring.
const maxParseFailures = 32

func (b *Broker) recordParseFailure(pqlText string, err error) {
	f := ParseFailure{PQL: pqlText, Error: err.Error()}
	var pe *pql.ParseError
	if errors.As(err, &pe) {
		f.Line, f.Col, f.Offset, f.Token = pe.Line, pe.Col, pe.Offset, pe.Token
	}
	b.badMu.Lock()
	b.badPQL = append(b.badPQL, f)
	if len(b.badPQL) > maxParseFailures {
		b.badPQL = b.badPQL[len(b.badPQL)-maxParseFailures:]
	}
	b.badMu.Unlock()
}

// ParseFailures returns the retained rejected queries, oldest first.
func (b *Broker) ParseFailures() []ParseFailure {
	b.badMu.Lock()
	defer b.badMu.Unlock()
	return append([]ParseFailure(nil), b.badPQL...)
}

// Start joins the cluster as a spectator: it registers its config and
// subscribes to external-view changes to keep routing tables fresh (paper
// 3.3.2).
func (b *Broker) Start() error {
	b.sess = b.store.NewClient()
	admin := helix.NewAdmin(b.sess, b.cfg.Cluster)
	if err := admin.CreateCluster(); err != nil {
		return err
	}
	if err := admin.RegisterInstance(helix.InstanceConfig{Instance: b.cfg.Instance, Tags: []string{"broker"}}); err != nil {
		return err
	}
	events, cancel := b.sess.WatchChildren(helix.ExternalViewsPath(b.cfg.Cluster))
	b.evCancel = cancel
	go func() {
		for range events {
			b.invalidateAll()
		}
	}()
	return nil
}

// Stop leaves the cluster.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.evCancel != nil {
		b.evCancel()
		b.evCancel = nil
	}
	for _, cancel := range b.watching {
		cancel()
	}
	b.watching = map[string]func(){}
	for _, cancel := range b.cfgWatching {
		cancel()
	}
	b.cfgWatching = map[string]func(){}
	b.mu.Unlock()
	if b.sess != nil {
		b.sess.Close()
	}
}

func (b *Broker) invalidateAll() {
	b.mu.Lock()
	b.routing = map[string]*routingState{}
	b.mu.Unlock()
	if b.resultCache != nil {
		b.resultCache.InvalidateAll()
	}
}

func (b *Broker) invalidate(resource string) {
	b.mu.Lock()
	delete(b.routing, resource)
	b.mu.Unlock()
	// The version-vector key already makes the dropped routing state's
	// entries unreachable; the eager scope invalidation reclaims their
	// memory and keeps the invalidation counters exact (once per entry —
	// a second watch firing finds the scope empty and counts nothing).
	if b.resultCache != nil {
		b.resultCache.InvalidateScope(resource)
	}
}

// ResultCache exposes the broker result-cache tier (nil when disabled);
// tests and the HTTP debug surface read its occupancy.
func (b *Broker) ResultCache() *qcache.Cache { return b.resultCache }

func (b *Broker) randIntn(n int) int {
	b.rndMu.Lock()
	defer b.rndMu.Unlock()
	return b.rnd.Intn(n)
}

// tableConfig reads (and caches) a resource's config; a miss means the
// resource does not exist.
func (b *Broker) tableConfig(resource string) (*table.Config, bool) {
	b.mu.Lock()
	if cfg, ok := b.configs[resource]; ok {
		b.mu.Unlock()
		return cfg, true
	}
	b.mu.Unlock()
	cfg, err := controller.ReadTableConfig(b.sess, b.cfg.Cluster, resource)
	if err != nil {
		return nil, false
	}
	b.mu.Lock()
	b.configs[resource] = cfg
	// Track config changes (schema evolution, paper 5.2) so the cache
	// never serves a stale schema.
	if _, ok := b.cfgWatching[resource]; !ok {
		events, cancel := b.sess.Watch(helix.PropertyStorePath(b.cfg.Cluster, "CONFIGS", "TABLE", resource))
		b.cfgWatching[resource] = cancel
		go func() {
			for range events {
				b.mu.Lock()
				delete(b.configs, resource)
				b.mu.Unlock()
			}
		}()
	}
	b.mu.Unlock()
	return cfg, true
}

// routingFor returns (building if needed) the routing state of a resource.
func (b *Broker) routingFor(resource string) (*routingState, error) {
	b.mu.Lock()
	rs, ok := b.routing[resource]
	b.mu.Unlock()
	if ok {
		return rs, nil
	}
	// Read the external view data and its store version in ONE Get: the
	// version seeds the result-cache key, so reading it separately from
	// the data would open a window where routing reflects one view and
	// cache keys another (a stale hit surviving its invalidation).
	data, ver, err := b.sess.Get(helix.ExternalViewPath(b.cfg.Cluster, resource))
	ev := &helix.ExternalView{Resource: resource, Partitions: map[string]map[string]string{}}
	switch {
	case err == zkmeta.ErrNoNode:
		// No external view yet: an empty routing state.
	case err != nil:
		return nil, err
	default:
		if err := json.Unmarshal(data, ev); err != nil {
			return nil, err
		}
		if ev.Partitions == nil {
			ev.Partitions = map[string]map[string]string{}
		}
	}
	si := segmentInstances{}
	consuming := map[string]bool{}
	for seg, replicas := range ev.Partitions {
		for inst, state := range replicas {
			// Both fully online replicas and consuming replicas
			// participate in query processing.
			if state == helix.StateOnline || state == helix.StateConsuming {
				si[seg] = append(si[seg], inst)
			}
			if state == helix.StateConsuming {
				consuming[seg] = true
			}
		}
	}
	rs = &routingState{segments: si, consuming: consuming, segPartition: map[string]int{}, segMeta: map[string]*table.SegmentMeta{}}
	b.rndMu.Lock()
	switch b.cfg.Strategy {
	case StrategyLargeCluster:
		tables, err := filterRoutingTables(si, b.cfg.TargetServers, b.cfg.RoutingTables, b.cfg.RoutingCandidates, b.rnd)
		if err == nil {
			rs.tables = tables
		}
	default:
		rt, err := generateBalanced(si, b.rnd)
		if err == nil {
			rs.tables = []RoutingTable{rt}
		}
	}
	b.rndMu.Unlock()
	if len(rs.tables) == 0 && len(si) > 0 {
		return nil, fmt.Errorf("broker: could not build routing table for %s", resource)
	}
	// Segment metadata cache: partition map for partition-aware routing,
	// time ranges and doc counts for broker-side pruning.
	if metas, err := controller.ReadSegmentMetas(b.sess, b.cfg.Cluster, resource); err == nil {
		for _, m := range metas {
			rs.segPartition[m.Name] = m.Partition
			rs.segMeta[m.Name] = m
		}
	}
	rs.version = routingVersion(ver, ev, rs.segMeta)
	b.mu.Lock()
	b.routing[resource] = rs
	// Register a data watch so external-view updates refresh routing
	// (paper 3.3.2: "brokers listen to changes to the cluster state and
	// update their routing tables").
	if _, ok := b.watching[resource]; !ok {
		events, cancel := b.sess.Watch(helix.ExternalViewPath(b.cfg.Cluster, resource))
		b.watching[resource] = cancel
		go func() {
			for range events {
				b.invalidate(resource)
			}
		}()
	}
	b.mu.Unlock()
	return rs, nil
}

// timeBoundary computes the hybrid split point: the max time of the offline
// table's completed segments. Offline serves time < boundary, realtime
// serves time >= boundary (paper Figure 6).
func (b *Broker) timeBoundary(offlineResource string) (int64, bool) {
	metas, err := controller.ReadSegmentMetas(b.sess, b.cfg.Cluster, offlineResource)
	if err != nil || len(metas) == 0 {
		return 0, false
	}
	var max int64
	found := false
	for _, m := range metas {
		if m.Status == table.StatusDone {
			if !found || m.MaxTime > max {
				max = m.MaxTime
			}
			found = true
		}
	}
	return max, found
}

// ServerException records one server-level failure observed during
// scatter/gather. Recovered failures were masked by a retry or hedged
// request and did not affect the result; unrecovered ones mark it partial.
type ServerException struct {
	Server    string
	Error     string
	Recovered bool
}

// Response is the broker's reply to a client.
type Response struct {
	*query.Result
	// ServersQueried counts the scatter groups fanned out across
	// subqueries (paper 3.3.3 step 7's "servers queried").
	ServersQueried int
	// ServersResponded counts the groups that produced a result, possibly
	// via an alternate replica after the primary failed. The result is
	// complete iff ServersResponded == ServersQueried and there are no
	// carried exceptions.
	ServersResponded int
	// ServerExceptions details every per-server failure, including those
	// recovered by retries or hedging.
	ServerExceptions []ServerException
}

// Execute parses PQL, performs hybrid rewriting, scatters the query and
// gathers the merged result (paper 3.3.3). The query's whole lifecycle runs
// against one QueryContext: parsing and routing are charged against the
// deadline budget before the fan-out, each server call carries the budget
// still remaining at send time, and the per-phase ledger is returned to the
// client as the response trace.
func (b *Broker) Execute(ctx context.Context, pqlText, tenant string) (resp *Response, err error) {
	qc := qctx.New("", b.cfg.QueryTimeout)
	ctx = qctx.With(ctx, qc)
	start := qc.StartTime()
	stop := qc.Clock(qctx.PhaseParse)
	q, err := pql.Parse(pqlText)
	stop()
	if err != nil {
		b.met.badRequests.Inc()
		b.recordParseFailure(pqlText, err)
		return nil, err
	}
	stopRoute := qc.Clock(qctx.PhaseRoute)
	offline := table.ResourceName(q.Table, table.Offline)
	realtime := table.ResourceName(q.Table, table.Realtime)
	offCfg, hasOffline := b.tableConfig(offline)
	rtCfg, hasRealtime := b.tableConfig(realtime)
	if !hasOffline && !hasRealtime {
		stopRoute()
		b.met.badRequests.Inc()
		return nil, fmt.Errorf("broker: unknown table %q", q.Table)
	}
	b.met.requests.Inc()
	b.met.queries.With(q.Table).Inc()
	// Failures past this point have a table to charge them to.
	defer func() {
		if err != nil {
			b.met.failures.With(q.Table).Inc()
		}
	}()

	type subquery struct {
		resource string
		cfg      *table.Config
		q        *pql.Query
	}
	var subs []subquery
	switch {
	case hasOffline && hasRealtime:
		// Hybrid rewrite around the time boundary (paper Figure 6).
		timeCol := offCfg.Schema.TimeColumn()
		boundary, ok := b.timeBoundary(offline)
		if ok && timeCol != "" {
			offQ := q.WithExtraFilter(pql.Comparison{Column: timeCol, Op: pql.OpLt, Value: boundary})
			rtQ := q.WithExtraFilter(pql.Comparison{Column: timeCol, Op: pql.OpGte, Value: boundary})
			subs = append(subs, subquery{offline, offCfg, offQ}, subquery{realtime, rtCfg, rtQ})
		} else {
			// No boundary to split on (no completed offline data, or
			// no shared time column): query both sides unrewritten.
			// The time column requirement of paper 3.3.3 is what
			// prevents double counting; without it, deduplication is
			// the operator's responsibility.
			subs = append(subs, subquery{offline, offCfg, q}, subquery{realtime, rtCfg, q})
		}
	case hasOffline:
		subs = append(subs, subquery{offline, offCfg, q})
	default:
		subs = append(subs, subquery{realtime, rtCfg, q})
	}
	stopRoute()

	ctx, cancel := context.WithTimeout(ctx, b.cfg.QueryTimeout)
	defer cancel()

	var merged *query.Intermediate
	var exceptions []string
	var srvExcs []ServerException
	var prunedStats query.Stats
	queried, responded := 0, 0
	for _, sub := range subs {
		out, err := b.scatterGather(ctx, qc, sub.resource, sub.cfg, sub.q, tenant)
		if err != nil {
			return nil, err
		}
		queried += out.queried
		responded += out.responded
		prunedStats.Merge(out.pruned)
		exceptions = append(exceptions, out.respExcs...)
		srvExcs = append(srvExcs, out.srvExcs...)
		if merged == nil {
			merged = out.result
			continue
		}
		if out.result != nil {
			stopMerge := qc.Clock(qctx.PhaseMerge)
			err := merged.Merge(out.result)
			stopMerge()
			if err != nil {
				return nil, err
			}
		}
	}
	// Unrecovered server failures surface as client-visible exceptions;
	// failures masked by a retry or hedge stay in ServerExceptions only.
	for _, e := range srvExcs {
		if !e.Recovered {
			exceptions = append(exceptions, fmt.Sprintf("server %s: %s", e.Server, e.Error))
		}
	}
	if merged == nil {
		if len(exceptions) == 0 && responded == queried && prunedStats.SegmentsPrunedByBroker == 0 {
			return nil, fmt.Errorf("broker: no servers produced results")
		}
		// Every server failed — or every segment was pruned before the
		// scatter: degrade to an empty (for pruning: complete and exact)
		// result rather than failing the query.
		merged = query.EmptyIntermediate(q)
	}
	merged.Stats.Merge(prunedStats)
	stop = qc.Clock(qctx.PhaseReduce)
	final := merged.Finalize(q)
	stop()
	final.Exceptions = exceptions
	final.Partial = len(exceptions) > 0 || responded < queried
	final.TimeMillis = time.Since(start).Milliseconds()
	final.QueryID = qc.ID()
	final.Trace = qc.TraceSnapshot()

	elapsed := time.Since(start)
	b.met.latency.With(q.Table).ObserveDuration(elapsed)
	b.met.fanout.Observe(float64(queried))
	if n := prunedStats.SegmentsPrunedByBroker; n > 0 {
		b.met.pruned.With(q.Table).Add(int64(n))
	}
	if final.Partial {
		b.met.partials.With(q.Table).Inc()
	}
	for _, e := range srvExcs {
		b.met.exceptions.With(fmt.Sprintf("%t", e.Recovered)).Inc()
	}
	phases := make(map[string]int64, len(final.Trace))
	for p, d := range final.Trace {
		phases[string(p)] = metrics.DurationToUs(d)
	}
	b.slow.Record(metrics.SlowQuery{
		QueryID:     final.QueryID,
		Table:       q.Table,
		PQL:         pqlText,
		TimeMillis:  final.TimeMillis,
		LatencyUs:   metrics.DurationToUs(elapsed),
		Partial:     final.Partial,
		PhaseTraces: phases,
	})
	return &Response{
		Result:           final,
		ServersQueried:   queried,
		ServersResponded: responded,
		ServerExceptions: srvExcs,
	}, nil
}

// gatherResult is the outcome of scattering one subquery.
type gatherResult struct {
	result    *query.Intermediate
	respExcs  []string          // exceptions carried inside successful responses
	srvExcs   []ServerException // transport/server-level failures
	queried   int               // scatter groups fanned out
	responded int               // groups that produced a full result
	// pruned accounts for segments the broker dropped before the scatter:
	// SegmentsPrunedByBroker for every drop, plus NumSegmentsQueried and
	// TotalDocs for time-range drops (those segments would have been
	// dispatched — and counted — with pruning off, so parity demands it).
	pruned query.Stats
}

// groupResult is the outcome of one scatter group (a server and its assigned
// segments), after retries and hedging.
type groupResult struct {
	result    *query.Intermediate
	responded bool
	respExcs  []string
	excs      []ServerException
	err       error // fatal merge error, aborts the query
}

// scatterGather sends one rewritten subquery to the servers of a resource
// and merges their partial results. Each scatter group gets its own deadline
// carved from the query budget; failed groups are retried against alternate
// replicas of their segments, and stragglers optionally race a hedged
// duplicate (paper 3.3.3 steps 3-7).
func (b *Broker) scatterGather(ctx context.Context, qc *qctx.QueryContext, resource string, cfg *table.Config, q *pql.Query, tenant string) (gatherResult, error) {
	var out gatherResult
	stopRoute := qc.Clock(qctx.PhaseRoute)
	rs, err := b.routingFor(resource)
	if err != nil {
		stopRoute()
		return out, err
	}
	var rt RoutingTable
	b.rndMu.Lock()
	rt = rs.pick(b.rnd)
	b.rndMu.Unlock()
	if rt == nil {
		// Resource exists but has no queryable segments yet.
		stopRoute()
		return out, nil
	}
	// Partition-aware pruning (paper 4.4): a single-partition query only
	// contacts servers holding that partition's segments.
	if b.cfg.PartitionAware && cfg.PartitionColumn != "" && cfg.NumPartitions > 0 {
		if value, ok := partitionFilterValue(q.Filter, cfg.PartitionColumn); ok {
			p := stream.PartitionFor([]byte(fmt.Sprint(value)), cfg.NumPartitions)
			before := rt.SegmentCount()
			rt = restrict(rt, func(seg string) bool {
				sp, known := rs.segPartition[seg]
				return !known || sp == -1 || sp == p
			})
			if !b.cfg.DisablePruning {
				out.pruned.SegmentsPrunedByBroker += before - rt.SegmentCount()
			}
		}
	}
	// Time-range pruning: segments whose cached ZK time range cannot
	// overlap the filter's conjunctive time bounds never leave the broker.
	// Only completed segments are dropped — a consuming segment's max time
	// is still moving, so its metadata cannot prove non-overlap.
	if !b.cfg.DisablePruning && q.Filter != nil && cfg.Schema != nil {
		if timeCol := cfg.Schema.TimeColumn(); timeCol != "" {
			if lo, hi, ok := query.TimeBounds(q.Filter, timeCol); ok {
				rt = restrict(rt, func(seg string) bool {
					m := rs.segMeta[seg]
					if m == nil || m.Status != table.StatusDone {
						return true
					}
					if m.MaxTime < lo || m.MinTime > hi {
						out.pruned.SegmentsPrunedByBroker++
						out.pruned.NumSegmentsQueried++
						out.pruned.TotalDocs += int64(m.NumDocs)
						return false
					}
					return true
				})
			}
		}
	}
	stopRoute()

	// Result-cache dispatch. Only aggregation shapes are cacheable (a
	// selection's row merge order is not deterministic across scatters),
	// and only the immutable portion of the routing table: consuming
	// segments always scatter live, and a hit merges the cached portion
	// with their fresh partials.
	cache := b.resultCache
	if cache == nil || !q.IsAggregation() {
		live, _, err := b.scatterPortions(ctx, qc, rs, resource, q, tenant, rt, nil)
		if err != nil {
			return out, err
		}
		return out, out.fold(qc, live)
	}
	imm, cons := splitConsuming(rt, rs.consuming)
	if len(imm) == 0 {
		// Every routed segment is consuming — nothing cacheable.
		live, _, err := b.scatterPortions(ctx, qc, rs, resource, q, tenant, cons, nil)
		if err != nil {
			return out, err
		}
		return out, out.fold(qc, live)
	}
	key := resultCacheKey(rs, tenant, q)
	if v, ok := cache.Get(resource, q.Table, key); ok {
		hit := v.(*cachedGather).replay()
		live, _, err := b.scatterPortions(ctx, qc, rs, resource, q, tenant, cons, nil)
		if err != nil {
			return out, err
		}
		if err := out.fold(qc, hit); err != nil {
			return out, err
		}
		return out, out.fold(qc, live)
	}
	live, cacheable, err := b.scatterPortions(ctx, qc, rs, resource, q, tenant, cons, imm)
	if err != nil {
		return out, err
	}
	if cacheable.complete() && cacheable.result != nil {
		cache.Put(resource, q.Table, key, &cachedGather{
			result:    cacheable.result.Clone(),
			queried:   cacheable.queried,
			responded: cacheable.responded,
		}, cacheable.result.SizeBytes())
	}
	if err := out.fold(qc, cacheable); err != nil {
		return out, err
	}
	return out, out.fold(qc, live)
}

// fold absorbs one scatter portion's outcome into the subquery's gather,
// charging the cross-portion merge to the query's merge phase.
func (out *gatherResult) fold(qc *qctx.QueryContext, p gatherResult) error {
	out.queried += p.queried
	out.responded += p.responded
	out.respExcs = append(out.respExcs, p.respExcs...)
	out.srvExcs = append(out.srvExcs, p.srvExcs...)
	if p.result == nil {
		return nil
	}
	if out.result == nil {
		out.result = p.result
		return nil
	}
	stop := qc.Clock(qctx.PhaseMerge)
	defer stop()
	return out.result.Merge(p.result)
}

// scatterPortions fans out the scatter groups of both portions — live
// (consuming segments, or everything when the cache is out of play) and
// cacheable (immutable segments) — in one concurrent wave, then merges
// each group's partial into its own portion so the cacheable half can be
// stored without the moving data mixed in. The gather loop charges
// streaming merges to the merge phase and the rest of its wall clock to
// scatter, keeping the two disjoint so the ledger still sums to at most
// the elapsed wall clock.
func (b *Broker) scatterPortions(ctx context.Context, qc *qctx.QueryContext, rs *routingState, resource string, q *pql.Query, tenant string, live, cacheable RoutingTable) (liveOut, cacheOut gatherResult, err error) {
	scatterStart := time.Now()
	var mergeDur time.Duration
	pqlText := q.String()
	type tagged struct {
		cacheable bool
		gr        groupResult
	}
	total := len(live) + len(cacheable)
	results := make(chan tagged, total)
	for _, portion := range []struct {
		rt        RoutingTable
		cacheable bool
	}{{live, false}, {cacheable, true}} {
		for instance, segs := range portion.rt {
			go func(instance string, segs []string, cacheable bool) {
				results <- tagged{cacheable, b.queryGroup(ctx, qc, rs, resource, pqlText, tenant, q, instance, segs)}
			}(instance, segs, portion.cacheable)
		}
	}
	liveOut.queried, cacheOut.queried = len(live), len(cacheable)
	charge := func() {
		qc.Charge(qctx.PhaseScatter, time.Since(scatterStart)-mergeDur)
		qc.Charge(qctx.PhaseMerge, mergeDur)
	}
	for i := 0; i < total; i++ {
		t := <-results
		dst := &liveOut
		if t.cacheable {
			dst = &cacheOut
		}
		gr := t.gr
		if gr.err != nil {
			charge()
			return liveOut, cacheOut, gr.err
		}
		if gr.responded {
			dst.responded++
		}
		dst.respExcs = append(dst.respExcs, gr.respExcs...)
		dst.srvExcs = append(dst.srvExcs, gr.excs...)
		if gr.result == nil {
			continue
		}
		if dst.result == nil {
			dst.result = gr.result
			continue
		}
		mt := time.Now()
		err := dst.result.Merge(gr.result)
		mergeDur += time.Since(mt)
		if err != nil {
			charge()
			return liveOut, cacheOut, err
		}
	}
	charge()
	return liveOut, cacheOut, nil
}

// queryGroup drives one scatter group to completion: query the primary
// replica (hedging against a straggler if configured), then retry any failed
// segments on untried replicas with backoff, up to the retry budget.
func (b *Broker) queryGroup(ctx context.Context, qc *qctx.QueryContext, rs *routingState, resource, pqlText, tenant string, q *pql.Query, primary string, segs []string) groupResult {
	var gr groupResult
	tried := map[string]bool{}
	assign := RoutingTable{primary: segs}
	lost := false // segments dropped because no untried replica remained
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			b.met.retries.Inc()
			timer := time.NewTimer(b.cfg.RetryBackoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return gr
			case <-timer.C:
			}
		}
		// Deterministic order keeps replica selection reproducible.
		insts := make([]string, 0, len(assign))
		for inst := range assign {
			insts = append(insts, inst)
		}
		sort.Strings(insts)
		var failed []string
		for _, inst := range insts {
			resp, excs := b.hedgedCall(ctx, qc, rs, resource, pqlText, tenant, q, inst, assign[inst], tried)
			gr.excs = append(gr.excs, excs...)
			if resp == nil {
				failed = append(failed, assign[inst]...)
				continue
			}
			// Fold the server's queue/execute timings into the trace as
			// the per-phase maximum: servers run concurrently, so the
			// critical path is what the client can act on.
			qc.ObserveServer(resp.Trace)
			gr.respExcs = append(gr.respExcs, resp.Exceptions...)
			if gr.result == nil {
				gr.result = resp.Result
				continue
			}
			if err := gr.result.Merge(resp.Result); err != nil {
				gr.err = err
				return gr
			}
		}
		if len(failed) == 0 {
			if !lost {
				gr.responded = true
				// Every segment got a result: earlier failures were
				// masked by a retry or hedge.
				for i := range gr.excs {
					gr.excs[i].Recovered = true
				}
			}
			return gr
		}
		if attempt >= b.cfg.retries() || ctx.Err() != nil {
			return gr
		}
		next := alternateGroups(rs, failed, tried)
		if next.SegmentCount() < len(failed) {
			lost = true
		}
		if len(next) == 0 {
			return gr
		}
		assign = next
	}
}

// hedgedCall executes one server request with a per-server deadline. When
// hedging is enabled and the server has not answered within HedgeDelay, a
// duplicate request races on an untried replica holding the same segments;
// the first usable response wins. Responses failing shape validation count
// as server failures so corruption can never poison the merge.
func (b *Broker) hedgedCall(ctx context.Context, qc *qctx.QueryContext, rs *routingState, resource, pqlText, tenant string, q *pql.Query, instance string, segs []string, tried map[string]bool) (*transport.QueryResponse, []ServerException) {
	type callRes struct {
		inst string
		resp *transport.QueryResponse
		err  error
	}
	ch := make(chan callRes, 2)
	launch := func(inst string) {
		tried[inst] = true
		go func() {
			resp, err := b.callServer(ctx, qc, resource, pqlText, tenant, inst, segs)
			ch <- callRes{inst, resp, err}
		}()
	}
	launch(instance)
	outstanding := 1

	var hedgeC <-chan time.Time
	var hedgeTimer *time.Timer
	if b.cfg.HedgeDelay > 0 {
		if _, ok := hedgeTarget(rs, segs, tried); ok {
			hedgeTimer = time.NewTimer(b.cfg.HedgeDelay)
			hedgeC = hedgeTimer.C
			defer hedgeTimer.Stop()
		}
	}

	var excs []ServerException
	for outstanding > 0 {
		select {
		case <-ctx.Done():
			// The query deadline passed while calls are still in flight.
			// A well-behaved server unwinds on cancellation, but this
			// gather goroutine must not bet its life on that: abandon
			// the stragglers (the channel is buffered, so their late
			// sends cannot block) and report the group failed.
			excs = append(excs, ServerException{
				Server: instance,
				Error:  fmt.Sprintf("abandoned after query deadline: %v", ctx.Err()),
			})
			return nil, excs
		case <-hedgeC:
			hedgeC = nil
			if h, ok := hedgeTarget(rs, segs, tried); ok {
				b.met.hedges.Inc()
				launch(h)
				outstanding++
			}
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if cerr := r.resp.Result.Conforms(q); cerr != nil {
					r.err = cerr
				}
			}
			if r.err != nil {
				excs = append(excs, ServerException{Server: r.inst, Error: r.err.Error()})
				continue
			}
			return r.resp, excs
		}
	}
	return nil, excs
}

// callServer issues one request to one server under the per-server deadline,
// carrying the query's identity and the deadline budget still unspent at
// send time (parse, routing and any earlier attempts already charged).
func (b *Broker) callServer(ctx context.Context, qc *qctx.QueryContext, resource, pqlText, tenant, instance string, segs []string) (*transport.QueryResponse, error) {
	client, ok := b.registry.ServerClient(instance)
	if !ok {
		return nil, fmt.Errorf("no client for %s", instance)
	}
	cctx := ctx
	if b.cfg.PerServerTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, b.cfg.PerServerTimeout)
		defer cancel()
	}
	var budgetMillis int64
	if left, ok := qc.Remaining(); ok {
		// Round up so a sub-millisecond remainder is not mistaken for
		// "unset" on the wire.
		budgetMillis = int64((left + time.Millisecond - 1) / time.Millisecond)
		if budgetMillis < 1 {
			budgetMillis = 1
		}
	}
	return client.Execute(cctx, &transport.QueryRequest{
		Resource:     resource,
		PQL:          pqlText,
		Segments:     segs,
		Tenant:       tenant,
		QueryID:      qc.ID(),
		BudgetMillis: budgetMillis,
	})
}

// alternateGroups reassigns failed segments onto untried replicas, least
// loaded first. Segments with no untried replica are dropped: they stay
// failed and the group reports an explicitly partial result.
func alternateGroups(rs *routingState, segs []string, tried map[string]bool) RoutingTable {
	sorted := append([]string(nil), segs...)
	sort.Strings(sorted)
	load := map[string]int{}
	out := RoutingTable{}
	for _, seg := range sorted {
		var candidates []string
		for _, inst := range rs.segments[seg] {
			if !tried[inst] {
				candidates = append(candidates, inst)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		best := candidates[0]
		for _, inst := range candidates[1:] {
			if load[inst] < load[best] {
				best = inst
			}
		}
		out[best] = append(out[best], seg)
		load[best]++
	}
	return out
}

// hedgeTarget picks the lexicographically first untried replica hosting
// every segment of the group, if one exists.
func hedgeTarget(rs *routingState, segs []string, tried map[string]bool) (string, bool) {
	counts := map[string]int{}
	for _, seg := range segs {
		for _, inst := range rs.segments[seg] {
			if !tried[inst] {
				counts[inst]++
			}
		}
	}
	var full []string
	for inst, n := range counts {
		if n == len(segs) {
			full = append(full, inst)
		}
	}
	if len(full) == 0 {
		return "", false
	}
	sort.Strings(full)
	return full[0], true
}

// partitionFilterValue extracts the value of a top-level equality predicate
// on the partition column (directly or inside an AND).
func partitionFilterValue(p pql.Predicate, column string) (any, bool) {
	switch n := p.(type) {
	case pql.Comparison:
		if n.Column == column && n.Op == pql.OpEq {
			return n.Value, true
		}
	case pql.And:
		for _, c := range n.Children {
			if v, ok := partitionFilterValue(c, column); ok {
				return v, true
			}
		}
	}
	return nil, false
}
