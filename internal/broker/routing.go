// Package broker implements the Pinot broker (paper 3.2 and 4.4): it routes
// queries to servers, merges partial responses, rewrites hybrid-table
// queries around the offline/realtime time boundary, and maintains routing
// tables under three strategies — balanced, large-cluster random-greedy
// (paper Algorithms 1 and 2), and partition-aware.
package broker

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"pinot/internal/table"
)

// Strategy selects how routing tables are generated.
type Strategy string

// Routing strategies (paper section 4.4).
const (
	// StrategyBalanced spreads a table's segments evenly across all
	// servers hosting them; every server is contacted per query.
	StrategyBalanced Strategy = "balanced"
	// StrategyLargeCluster generates many random-greedy routing tables
	// touching at most TargetServers servers each and keeps the ones
	// with the lowest per-server segment-count variance.
	StrategyLargeCluster Strategy = "largeCluster"
)

// RoutingTable maps server instance → the segments it must process for one
// query.
type RoutingTable map[string][]string

// ServerCount returns the number of servers the table touches.
func (rt RoutingTable) ServerCount() int { return len(rt) }

// SegmentCount returns the number of segments covered.
func (rt RoutingTable) SegmentCount() int {
	n := 0
	for _, segs := range rt {
		n += len(segs)
	}
	return n
}

// variance of per-server segment counts — the fitness metric of Algorithm 2
// ("empirical testing has shown that the variance of the number of segments
// assigned per server works well").
func (rt RoutingTable) variance() float64 {
	if len(rt) == 0 {
		return 0
	}
	var sum float64
	for _, segs := range rt {
		sum += float64(len(segs))
	}
	mean := sum / float64(len(rt))
	var v float64
	for _, segs := range rt {
		d := float64(len(segs)) - mean
		v += d * d
	}
	return v / float64(len(rt))
}

// segmentInstances is the SI map of Algorithm 1: segment → serving
// instances.
type segmentInstances map[string][]string

// instanceSegments is the IS map: instance → hosted segments.
func (si segmentInstances) invert() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for seg, insts := range si {
		for _, inst := range insts {
			if out[inst] == nil {
				out[inst] = map[string]bool{}
			}
			out[inst][seg] = true
		}
	}
	return out
}

// generateBalanced builds the default routing table: every segment assigned
// to its least-loaded replica, so all servers share the work evenly.
func generateBalanced(si segmentInstances, rnd *rand.Rand) (RoutingTable, error) {
	segs := make([]string, 0, len(si))
	for s := range si {
		segs = append(segs, s)
	}
	sort.Strings(segs)
	load := map[string]int{}
	rt := RoutingTable{}
	for _, seg := range segs {
		insts := si[seg]
		if len(insts) == 0 {
			return nil, fmt.Errorf("broker: segment %s has no available replica", seg)
		}
		best := insts[rnd.Intn(len(insts))]
		for _, inst := range insts {
			if load[inst] < load[best] {
				best = inst
			}
		}
		rt[best] = append(rt[best], seg)
		load[best]++
	}
	return rt, nil
}

// generateRoutingTable is paper Algorithm 1: pick T random instances, add
// instances until every segment is covered, then assign each segment to a
// replica chosen with load-aware weighting, processing segments with the
// fewest candidate instances first.
func generateRoutingTable(si segmentInstances, target int, rnd *rand.Rand) (RoutingTable, error) {
	is := si.invert()
	instances := make([]string, 0, len(is))
	for inst := range is {
		instances = append(instances, inst)
	}
	sort.Strings(instances)

	orphan := map[string]bool{}
	for seg := range si {
		orphan[seg] = true
	}
	used := map[string]bool{}
	addInstance := func(inst string) {
		if used[inst] {
			return
		}
		used[inst] = true
		for seg := range is[inst] {
			delete(orphan, seg)
		}
	}
	if len(instances) <= target {
		for _, inst := range instances {
			addInstance(inst)
		}
	} else {
		for len(used) < target {
			addInstance(instances[rnd.Intn(len(instances))])
		}
		// Cover orphan segments by adding one of their replicas. Orphans
		// are processed in sorted order so the table is a pure function of
		// the generator state — map iteration order must not leak in.
		for len(orphan) > 0 {
			seg := minKey(orphan)
			replicas := si[seg]
			if len(replicas) == 0 {
				return nil, fmt.Errorf("broker: segment %s has no available replica", seg)
			}
			addInstance(replicas[rnd.Intn(len(replicas))])
		}
	}
	if len(orphan) > 0 {
		return nil, fmt.Errorf("broker: %d segments uncovered", len(orphan))
	}

	// Queue of segments in ascending order of usable-instance count.
	type segChoice struct {
		seg   string
		insts []string
	}
	queue := make([]segChoice, 0, len(si))
	for seg, insts := range si {
		var usable []string
		for _, inst := range insts {
			if used[inst] {
				usable = append(usable, inst)
			}
		}
		if len(usable) == 0 {
			return nil, fmt.Errorf("broker: segment %s lost all replicas", seg)
		}
		sort.Strings(usable)
		queue = append(queue, segChoice{seg, usable})
	}
	sort.Slice(queue, func(i, j int) bool {
		if len(queue[i].insts) != len(queue[j].insts) {
			return len(queue[i].insts) < len(queue[j].insts)
		}
		return queue[i].seg < queue[j].seg
	})

	// PickWeightedRandomReplica: weight inversely to current load so the
	// result stays balanced.
	load := map[string]int{}
	rt := RoutingTable{}
	for _, sc := range queue {
		maxLoad := 0
		for _, inst := range sc.insts {
			if load[inst] > maxLoad {
				maxLoad = load[inst]
			}
		}
		weights := make([]float64, len(sc.insts))
		var total float64
		for i, inst := range sc.insts {
			weights[i] = float64(maxLoad-load[inst]) + 1
			total += weights[i]
		}
		r := rnd.Float64() * total
		pick := sc.insts[len(sc.insts)-1]
		for i, w := range weights {
			if r < w {
				pick = sc.insts[i]
				break
			}
			r -= w
		}
		rt[pick] = append(rt[pick], sc.seg)
		load[pick]++
	}
	return rt, nil
}

func minKey(m map[string]bool) string {
	min := ""
	for k := range m {
		if min == "" || k < min {
			min = k
		}
	}
	return min
}

// filterRoutingTables is paper Algorithm 2: generate `candidates` routing
// tables and keep the `keep` tables with the lowest fitness metric.
func filterRoutingTables(si segmentInstances, target, keep, candidates int, rnd *rand.Rand) ([]RoutingTable, error) {
	if keep <= 0 {
		keep = 1
	}
	if candidates < keep {
		candidates = keep
	}
	type scored struct {
		rt RoutingTable
		m  float64
	}
	heap := make([]scored, 0, keep)
	worst := func() int {
		wi := 0
		for i := 1; i < len(heap); i++ {
			if heap[i].m > heap[wi].m {
				wi = i
			}
		}
		return wi
	}
	for i := 0; i < candidates; i++ {
		rt, err := generateRoutingTable(si, target, rnd)
		if err != nil {
			return nil, err
		}
		s := scored{rt, rt.variance()}
		if len(heap) < keep {
			heap = append(heap, s)
			continue
		}
		if wi := worst(); s.m <= heap[wi].m {
			heap[wi] = s
		}
	}
	out := make([]RoutingTable, len(heap))
	for i, s := range heap {
		out[i] = s.rt
	}
	return out, nil
}

// routingState is the cached routing machinery for one resource.
type routingState struct {
	mu       sync.Mutex
	tables   []RoutingTable
	segments segmentInstances
	// version is this routing snapshot's identity: the external view's
	// store version plus a digest over the segment set, per-replica states
	// and the cached segment metadata (CRC, status, stream end offset). The
	// broker result cache keys on it, so any cluster transition that could
	// change a query's answer also changes every affected cache key — the
	// precise-invalidation contract that lets the cache live without TTLs.
	version string
	// consuming marks segments with a replica in CONSUMING state. They are
	// excluded from result-cache coverage and always scattered live, so a
	// cache hit still reflects every row ingested since the entry was
	// stored.
	consuming map[string]bool
	// partition routing support
	segPartition map[string]int // segment → partition (-1 unknown)
	// segMeta caches ZK segment metadata (time range, partition, doc
	// count) so broker-side pruning never touches segment data. Entries
	// refresh with the routing state on external-view changes.
	segMeta map[string]*table.SegmentMeta
}

// pick returns a random pre-generated routing table (paper 3.3.3 step 2: "a
// routing table for that particular table is picked at random").
func (rs *routingState) pick(rnd *rand.Rand) RoutingTable {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.tables) == 0 {
		return nil
	}
	return rs.tables[rnd.Intn(len(rs.tables))]
}

// restrict narrows a routing table to segments accepted by keep.
func restrict(rt RoutingTable, keep func(segment string) bool) RoutingTable {
	out := RoutingTable{}
	for inst, segs := range rt {
		var kept []string
		for _, s := range segs {
			if keep(s) {
				kept = append(kept, s)
			}
		}
		if len(kept) > 0 {
			out[inst] = kept
		}
	}
	return out
}
