package objstore

import (
	"errors"
	"reflect"
	"testing"
)

func stores(t *testing.T) map[string]Store {
	fsStore, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "fs": fsStore}
}

func TestPutGetDeleteList(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("tables/events/seg0", []byte("blob0")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("tables/events/seg1", []byte("blob1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("tables/other/seg0", []byte("x")); err != nil {
				t.Fatal(err)
			}
			data, err := s.Get("tables/events/seg0")
			if err != nil || string(data) != "blob0" {
				t.Fatalf("get: %q %v", data, err)
			}
			if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing get: %v", err)
			}
			ok, err := s.Exists("tables/events/seg1")
			if err != nil || !ok {
				t.Fatalf("exists: %v %v", ok, err)
			}
			keys, err := s.List("tables/events/")
			if err != nil || !reflect.DeepEqual(keys, []string{"tables/events/seg0", "tables/events/seg1"}) {
				t.Fatalf("list: %v %v", keys, err)
			}
			if err := s.Delete("tables/events/seg0"); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("tables/events/seg0"); err != nil {
				t.Fatalf("double delete: %v", err)
			}
			if ok, _ := s.Exists("tables/events/seg0"); ok {
				t.Fatal("exists after delete")
			}
			// Overwrite.
			if err := s.Put("tables/events/seg1", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			data, _ = s.Get("tables/events/seg1")
			if string(data) != "v2" {
				t.Fatalf("overwrite lost: %q", data)
			}
		})
	}
}

func TestGetIsACopy(t *testing.T) {
	m := NewMem()
	_ = m.Put("k", []byte("abc"))
	d1, _ := m.Get("k")
	d1[0] = 'z'
	d2, _ := m.Get("k")
	if string(d2) != "abc" {
		t.Fatal("Get aliases internal storage")
	}
}

func TestFSRejectsEscapingKeys(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"../evil", "/abs", "a/../../b"} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
	}
}
