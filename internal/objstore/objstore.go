// Package objstore is the durable-object-store substrate (paper section
// 3.4): Pinot keeps all persistent segment data in a blob store (NFS at
// LinkedIn, Azure Disk elsewhere) and treats local disk as a cache. Both an
// in-memory and a filesystem-backed implementation are provided.
package objstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a key does not exist.
var ErrNotFound = errors.New("objstore: object not found")

// Store is a flat blob store keyed by slash-separated names.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Exists(key string) (bool, error)
	// List returns keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// Mem is an in-memory Store safe for concurrent use.
type Mem struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{objects: map[string][]byte{}} }

// Put stores a blob.
func (m *Mem) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[key] = append([]byte(nil), data...)
	return nil
}

// Get fetches a blob.
func (m *Mem) Get(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), data...), nil
}

// Delete removes a blob; deleting a missing key is not an error.
func (m *Mem) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, key)
	return nil
}

// Exists reports whether the key holds a blob.
func (m *Mem) Exists(key string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.objects[key]
	return ok, nil
}

// List returns sorted keys with the prefix.
func (m *Mem) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for k := range m.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// FS is a filesystem-backed Store rooted at a directory. Keys map to file
// paths under the root; key components must not escape it.
type FS struct {
	root string
}

// NewFS returns a store rooted at dir, creating it if needed.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FS{root: dir}, nil
}

func (f *FS) path(key string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(key))
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
		return "", fmt.Errorf("objstore: invalid key %q", key)
	}
	return filepath.Join(f.root, clean), nil
}

// Put stores a blob, creating parent directories.
func (f *FS) Put(key string, data []byte) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get fetches a blob.
func (f *FS) Get(key string) ([]byte, error) {
	p, err := f.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return data, err
}

// Delete removes a blob; deleting a missing key is not an error.
func (f *FS) Delete(key string) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Exists reports whether the key holds a blob.
func (f *FS) Exists(key string) (bool, error) {
	p, err := f.path(key)
	if err != nil {
		return false, err
	}
	_, err = os.Stat(p)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return err == nil, err
}

// List returns sorted keys with the prefix.
func (f *FS) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(f.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(f.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
