package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"pinot/internal/segment"
	"pinot/internal/startree"
)

// SizeConfig scales a dataset.
type SizeConfig struct {
	Segments       int
	RowsPerSegment int
	Seed           int64
}

func (c *SizeConfig) withDefaults(segments, rows int) {
	if c.Segments <= 0 {
		c.Segments = segments
	}
	if c.RowsPerSegment <= 0 {
		c.RowsPerSegment = rows
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ---- Anomaly detection dataset (Figures 11, 12, 13) ----

var (
	anomalyCountries = genNames("country", 40)
	anomalyMetrics   = genNames("metric", 80)
	anomalyPlatforms = []string{"web", "ios", "android", "api"}
	anomalyFabrics   = []string{"lva1", "ltx1", "lor1", "lsg1", "ela4"}
	anomalyBrowsers  = []string{"chrome", "firefox", "safari", "edge", "opera", "other"}
)

const anomalyDays = 30

func genNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i)
	}
	return out
}

// Anomaly builds the ad-hoc reporting / anomaly detection dataset: SUM
// aggregations over multidimensional business metrics "with a variable
// number of filtering predicates and grouping clauses" (paper section 6).
func Anomaly(cfg SizeConfig) *Dataset {
	cfg.withDefaults(4, 50000)
	schema := mustSchema("anomaly", []segment.FieldSpec{
		{Name: "metricName", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "platform", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "fabric", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "browser", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "value", Type: segment.TypeDouble, Kind: segment.Metric, SingleValue: true},
		{Name: "count", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	d := &Dataset{
		Name:           "anomaly",
		Schema:         schema,
		NumSegments:    cfg.Segments,
		RowsPerSegment: cfg.RowsPerSegment,
		InvertedColumns: []string{
			"metricName", "country", "platform", "fabric", "browser",
		},
		StarTree: &startree.Config{
			DimensionSplitOrder: []string{"metricName", "day", "country", "platform", "fabric", "browser"},
			Metrics:             []string{"value", "count"},
			MaxLeafRecords:      1000,
		},
		seed: cfg.Seed,
	}
	d.genRow = func(r *rand.Rand, i int) segment.Row {
		// Metric popularity is skewed: a handful of key business
		// metrics dominate.
		m := anomalyMetrics[int(float64(len(anomalyMetrics))*r.Float64()*r.Float64())%len(anomalyMetrics)]
		return segment.Row{
			m,
			pick(r, anomalyCountries),
			pick(r, anomalyPlatforms),
			pick(r, anomalyFabrics),
			pick(r, anomalyBrowsers),
			float64(r.Intn(10000)) / 10,
			int64(1 + r.Intn(20)),
			int64(16000 + r.Intn(anomalyDays)),
		}
	}
	d.genQry = func(r *rand.Rand) string {
		// The monitoring portion issues fixed-shape queries; analysts
		// drill down with more predicates and group-bys.
		var preds []string
		preds = append(preds, fmt.Sprintf("metricName = '%s'", pick(r, anomalyMetrics)))
		if r.Float64() < 0.7 {
			lo := 16000 + r.Intn(anomalyDays-7)
			preds = append(preds, fmt.Sprintf("day BETWEEN %d AND %d", lo, lo+6))
		}
		if r.Float64() < 0.4 {
			preds = append(preds, fmt.Sprintf("country = '%s'", pick(r, anomalyCountries)))
		}
		if r.Float64() < 0.3 {
			preds = append(preds, fmt.Sprintf("platform = '%s'", pick(r, anomalyPlatforms)))
		}
		if r.Float64() < 0.15 {
			preds = append(preds, fmt.Sprintf("(browser = '%s' OR browser = '%s')",
				anomalyBrowsers[r.Intn(3)], anomalyBrowsers[3+r.Intn(3)]))
		}
		if r.Float64() < 0.15 {
			// Week-aligned filter through the expression pipeline.
			d := 16000 + r.Intn(anomalyDays)
			preds = append(preds, fmt.Sprintf("timeBucket(day, 7) = %d", d-d%7))
		}
		if r.Float64() < 0.15 {
			// Case-insensitive facet filter: single-column, deterministic,
			// dict-encoded — the dictionary-space-eligible shape.
			preds = append(preds, fmt.Sprintf("upper(browser) = '%s'",
				strings.ToUpper(pick(r, anomalyBrowsers))))
		}
		sel := "sum(value), count(*)"
		switch r.Intn(8) {
		case 0:
			sel = "sum(value * 100), count(*)"
		case 1:
			sel = fmt.Sprintf("sum(count * %d), max(abs(value - %d))", 1+r.Intn(3), r.Intn(900))
		}
		q := "SELECT " + sel + " FROM anomaly WHERE " + strings.Join(preds, " AND ")
		switch r.Intn(6) {
		case 0:
			q += " GROUP BY country TOP 10"
		case 1:
			q += " GROUP BY day TOP 31"
		case 2:
			q += " GROUP BY platform TOP 10"
		case 3:
			q += " GROUP BY timeBucket(day, 7) TOP 10"
		case 4:
			// String-builtin group key over one dict column, served from the
			// per-segment memo through the dictID→group translation table.
			q += " GROUP BY upper(fabric) TOP 10"
		}
		return q
	}
	return d
}

// ---- Share analytics / WVMP dataset (Figures 14 and 15) ----

var (
	wvmpRegions     = genNames("region", 30)
	wvmpSeniorities = genNames("seniority", 10)
	wvmpIndustries  = genNames("industry", 50)
)

// ShareAnalytics builds the "share analytics" / "who viewed my profile"
// dataset: every query filters on a Zipf-skewed entity id (vieweeId), so
// physically sorting on it makes query work a contiguous range (paper 4.2:
// "all queries have a filter on the vieweeId column").
func ShareAnalytics(cfg SizeConfig) *Dataset {
	cfg.withDefaults(4, 100000)
	numViewees := cfg.Segments * cfg.RowsPerSegment / 40
	if numViewees < 100 {
		numViewees = 100
	}
	numViewers := numViewees * 4
	schema := mustSchema("wvmp", []segment.FieldSpec{
		{Name: "vieweeId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "viewerId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "region", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "seniority", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "industry", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "views", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	d := &Dataset{
		Name:            "wvmp",
		Schema:          schema,
		NumSegments:     cfg.Segments,
		RowsPerSegment:  cfg.RowsPerSegment,
		SortColumn:      "vieweeId",
		InvertedColumns: []string{"vieweeId", "region", "seniority", "industry"},
		seed:            cfg.Seed,
	}
	d.genRow = func(r *rand.Rand, i int) segment.Row {
		// Lazily created per generator call chain: one Zipf per rand.
		return wvmpRow(r, numViewees, numViewers)
	}
	d.genQry = func(r *rand.Rand) string {
		// Hot profiles are viewed (and therefore queried) more.
		viewee := int64(float64(numViewees) * r.Float64() * r.Float64())
		base := fmt.Sprintf("FROM wvmp WHERE vieweeId = %d", viewee)
		switch r.Intn(8) {
		case 0:
			return "SELECT count(*), sum(views) " + base
		case 1:
			return "SELECT distinctcount(viewerId) " + base
		case 2:
			return "SELECT count(*) " + base + " GROUP BY region TOP 10"
		case 3:
			// Weekly trend line for the profile: expression group-by over
			// the time column.
			return "SELECT sum(views) " + base + " GROUP BY timeBucket(day, 7) TOP 15"
		case 4:
			return fmt.Sprintf("SELECT sum(views * %d) %s", 1+r.Intn(3), base)
		case 5:
			return "SELECT count(*) " + base + fmt.Sprintf(" AND timeBucket(day, 30) = %d", 15990+30*r.Intn(4))
		case 6:
			// Dictionary-space shapes: a case-folded facet probe and a
			// memo-served expression group key.
			if r.Intn(2) == 0 {
				return "SELECT sum(views) " + base +
					fmt.Sprintf(" AND upper(region) = '%s'", strings.ToUpper(pick(r, wvmpRegions)))
			}
			return "SELECT count(*) " + base + " GROUP BY lower(industry) TOP 10"
		default:
			return "SELECT sum(views) " + base + " GROUP BY seniority TOP 10"
		}
	}
	return d
}

func wvmpRow(r *rand.Rand, numViewees, numViewers int) segment.Row {
	// Quadratic skew approximates the long-tail profile-view
	// distribution without per-call Zipf construction cost.
	viewee := int64(float64(numViewees) * r.Float64() * r.Float64())
	return segment.Row{
		viewee,
		int64(r.Intn(numViewers)),
		pick(r, wvmpRegions),
		pick(r, wvmpSeniorities),
		pick(r, wvmpIndustries),
		int64(1 + r.Intn(3)),
		int64(16000 + r.Intn(90)),
	}
}

// WVMP is the "who viewed my profile" variant of the share-analytics
// dataset used by Figure 15: identical shape, smaller facet set.
func WVMP(cfg SizeConfig) *Dataset {
	d := ShareAnalytics(cfg)
	d.Name = "wvmp"
	return d
}

// ---- Impression discounting dataset (Figure 16) ----

// Impressions builds the impression-discounting dataset: every news-feed
// render looks up the items one member has already seen, so queries are
// high-rate single-member selections and the table is partitioned on
// memberId (paper 4.4 and section 6).
func Impressions(cfg SizeConfig, numPartitions int) *Dataset {
	cfg.withDefaults(8, 50000)
	if numPartitions <= 0 {
		numPartitions = 8
	}
	numMembers := cfg.Segments * cfg.RowsPerSegment / 50
	if numMembers < 1000 {
		numMembers = 1000
	}
	schema := mustSchema("impressions", []segment.FieldSpec{
		{Name: "memberId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "itemId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "action", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "impressions", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "ts", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true, TimeUnit: "MINUTES"},
	})
	d := &Dataset{
		Name:            "impressions",
		Schema:          schema,
		NumSegments:     cfg.Segments,
		RowsPerSegment:  cfg.RowsPerSegment,
		SortColumn:      "memberId",
		InvertedColumns: []string{"memberId"},
		PartitionColumn: "memberId",
		NumPartitions:   numPartitions,
		seed:            cfg.Seed,
	}
	actions := []string{"view", "scroll", "click", "hide"}
	// Segment si holds members of partition si % numPartitions, matching
	// how stream-partitioned realtime segments line up.
	d.genRow = func(r *rand.Rand, i int) segment.Row {
		si := i / cfg.RowsPerSegment
		p := si % numPartitions
		member := memberForPartition(r, numMembers, numPartitions, p)
		return segment.Row{
			member,
			int64(r.Intn(1 << 20)),
			pick(r, actions),
			int64(1 + r.Intn(4)),
			int64(26000000 + r.Intn(10000)),
		}
	}
	d.genQry = func(r *rand.Rand) string {
		member := int64(r.Intn(numMembers))
		return fmt.Sprintf("SELECT itemId, impressions FROM impressions WHERE memberId = %d LIMIT 200", member)
	}
	return d
}

// memberForPartition samples a member id landing in stream partition p
// under the Kafka partition function, by rejection.
func memberForPartition(r *rand.Rand, numMembers, numPartitions, p int) int64 {
	for {
		m := int64(r.Intn(numMembers))
		if PartitionOfMember(m, numPartitions) == p {
			return m
		}
	}
}
