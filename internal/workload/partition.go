package workload

import (
	"fmt"

	"pinot/internal/stream"
)

// PartitionOfMember maps a member id to its stream partition exactly as a
// producer keying messages by fmt.Sprint(memberId) would, so offline
// segments and realtime partitions agree (paper 4.4).
func PartitionOfMember(member int64, numPartitions int) int {
	return stream.PartitionFor([]byte(fmt.Sprint(member)), numPartitions)
}
