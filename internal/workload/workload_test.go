package workload

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pinot/internal/druid"
	"pinot/internal/pql"
	"pinot/internal/query"
	"pinot/internal/segment"
)

func smallSize() SizeConfig { return SizeConfig{Segments: 2, RowsPerSegment: 2000, Seed: 3} }

func TestDeterministicGeneration(t *testing.T) {
	for _, mk := range []func() *Dataset{
		func() *Dataset { return Anomaly(smallSize()) },
		func() *Dataset { return ShareAnalytics(smallSize()) },
		func() *Dataset { return Impressions(smallSize(), 4) },
	} {
		d1, d2 := mk(), mk()
		r1, r2 := d1.Rows(1), d2.Rows(1)
		if len(r1) != 2000 {
			t.Fatalf("%s rows = %d", d1.Name, len(r1))
		}
		for i := range r1 {
			if fmt.Sprint(r1[i]) != fmt.Sprint(r2[i]) {
				t.Fatalf("%s row %d not deterministic", d1.Name, i)
			}
		}
		q1, q2 := d1.Queries(50, 9), d2.Queries(50, 9)
		for i := range q1 {
			if q1[i] != q2[i] {
				t.Fatalf("%s query %d not deterministic", d1.Name, i)
			}
		}
	}
}

func TestQueriesParseAndRun(t *testing.T) {
	datasets := []*Dataset{Anomaly(smallSize()), ShareAnalytics(smallSize()), Impressions(smallSize(), 4)}
	for _, d := range datasets {
		segs, _, err := d.BuildIndexed(Variant{Name: "pinot", Index: segment.IndexConfig{
			SortColumn:      d.SortColumn,
			InvertedColumns: d.InvertedColumns,
		}, StarTree: d.StarTree})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		for _, q := range d.Queries(40, 11) {
			if _, err := pql.Parse(q); err != nil {
				t.Fatalf("%s: unparsable query %q: %v", d.Name, q, err)
			}
			res, err := query.Run(context.Background(), q, segs, d.Schema, query.Options{})
			if err != nil {
				t.Fatalf("%s: query %q failed: %v", d.Name, q, err)
			}
			if res.Partial {
				t.Fatalf("%s: query %q partial", d.Name, q)
			}
		}
	}
}

// TestVariantsAgree cross-checks that every index variant (including the
// Druid baseline) returns identical answers on the anomaly workload — the
// precondition for the figure comparisons to be meaningful.
func TestVariantsAgree(t *testing.T) {
	d := Anomaly(smallSize())
	variants := []Variant{
		{Name: "noindex"},
		{Name: "inverted", Index: segment.IndexConfig{InvertedColumns: d.InvertedColumns}},
		{Name: "startree", StarTree: d.StarTree},
		{Name: "druid", Index: druid.IndexConfig(d.Schema), Druid: true},
	}
	type built struct {
		v    Variant
		segs []query.IndexedSegment
	}
	var builds []built
	for _, v := range variants {
		segs, _, err := d.BuildIndexed(v)
		if err != nil {
			t.Fatal(err)
		}
		builds = append(builds, built{v, segs})
	}
	for _, q := range d.Queries(30, 21) {
		var want string
		for i, b := range builds {
			res, err := query.Run(context.Background(), q, b.segs, d.Schema, b.v.PlanOptions())
			if err != nil {
				t.Fatalf("[%s] %s: %v", b.v.Name, q, err)
			}
			got := renderRows(res)
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("[%s] %s:\n  got  %s\n  want %s", b.v.Name, q, got, want)
			}
		}
	}
}

func renderRows(res *query.Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		for _, v := range row {
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&sb, "%.4f|", f)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestDruidFootprintLarger verifies the on-disk size relationship the paper
// reports (Druid 1.2 TB vs Pinot 300 GB on share analytics): indexing every
// dimension costs real bytes.
func TestDruidFootprintLarger(t *testing.T) {
	d := ShareAnalytics(smallSize())
	_, pinotBytes, err := d.BuildIndexed(Variant{Name: "pinot", Index: segment.IndexConfig{SortColumn: d.SortColumn}})
	if err != nil {
		t.Fatal(err)
	}
	_, druidBytes, err := d.BuildIndexed(Variant{Name: "druid", Index: druid.IndexConfig(d.Schema), Druid: true})
	if err != nil {
		t.Fatal(err)
	}
	if druidBytes <= pinotBytes {
		t.Fatalf("druid bytes %d <= pinot bytes %d", druidBytes, pinotBytes)
	}
}

func TestImpressionsPartitioning(t *testing.T) {
	d := Impressions(SizeConfig{Segments: 4, RowsPerSegment: 500, Seed: 5}, 4)
	// Every row of segment si must land in partition si%4 under the
	// stream partition function.
	for si := 0; si < 4; si++ {
		for _, row := range d.Rows(si) {
			m := row[0].(int64)
			if got := PartitionOfMember(m, 4); got != si%4 {
				t.Fatalf("segment %d member %d in partition %d", si, m, got)
			}
		}
	}
}

func TestWVMPSortedQueriesAreCheap(t *testing.T) {
	d := ShareAnalytics(smallSize())
	sorted, _, err := d.BuildIndexed(Variant{Name: "sorted", Index: segment.IndexConfig{SortColumn: "vieweeId"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Run(context.Background(), "SELECT count(*) FROM wvmp WHERE vieweeId = 5", sorted, d.Schema, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The sorted fast path touches only the matching range: entries
	// scanned must be far below the dataset size.
	if res.Stats.NumEntriesScanned > int64(d.NumSegments*d.RowsPerSegment)/10 {
		t.Fatalf("sorted plan scanned %d entries", res.Stats.NumEntriesScanned)
	}
}
