// Package workload generates the synthetic equivalents of the paper's three
// production evaluation datasets and their sampled query sets (section 6):
//
//   - Anomaly: the ad-hoc reporting / anomaly-detection dataset behind
//     Figures 11–13 — moderate-cardinality business-metric dimensions, SUM
//     aggregations with variable filters and group-bys.
//   - ShareAnalytics (a.k.a. WVMP): the "share analytics" / "who viewed my
//     profile" dataset behind Figures 14–15 — a Zipf-skewed high-cardinality
//     entity key every query filters on, plus a few facet dimensions.
//   - Impressions: the impression-discounting dataset behind Figure 16 —
//     member-partitioned selection lookups at very high rates.
//
// All generation is deterministic from the seed, so experiments reproduce
// bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"

	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/startree"
)

// Dataset describes one synthetic workload: schema, deterministic row
// generation, recommended index configurations and a query sampler.
type Dataset struct {
	Name   string
	Schema *segment.Schema
	// NumSegments and RowsPerSegment size the data.
	NumSegments    int
	RowsPerSegment int
	// SortColumn, InvertedColumns and StarTree are the dataset's natural
	// Pinot index configuration; figure variants override them.
	SortColumn      string
	InvertedColumns []string
	StarTree        *startree.Config
	// PartitionColumn/NumPartitions for partition-aware routing.
	PartitionColumn string
	NumPartitions   int

	seed    int64
	genRow  func(r *rand.Rand, rowIdx int) segment.Row
	genQry  func(r *rand.Rand) string
	rowSalt int64
}

// Rows generates segment si's rows deterministically.
func (d *Dataset) Rows(si int) []segment.Row {
	r := rand.New(rand.NewSource(d.seed + int64(si)*7919 + d.rowSalt))
	rows := make([]segment.Row, d.RowsPerSegment)
	base := si * d.RowsPerSegment
	for i := range rows {
		rows[i] = d.genRow(r, base+i)
	}
	return rows
}

// Queries samples n PQL queries.
func (d *Dataset) Queries(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = d.genQry(r)
	}
	return out
}

// Variant is a named index configuration of a dataset, the unit the figures
// sweep over (e.g. "no index" vs "inverted" vs "star-tree").
type Variant struct {
	Name     string
	Index    segment.IndexConfig
	StarTree *startree.Config
	// Druid marks the Druid-baseline execution model (inverted index on
	// every dimension, bitmap-only evaluation).
	Druid bool
}

// PlanOptions returns the query-engine options for the variant.
func (v Variant) PlanOptions() query.Options {
	if v.Druid {
		return query.Options{
			ForceBitmap:          true,
			DisableSorted:        true,
			DisableStarTree:      true,
			DisableMetadataPlans: true,
		}
	}
	return query.Options{}
}

// BuildIndexed builds every segment of the dataset under a variant's index
// configuration, returning queryable indexed segments and the total
// serialized size in bytes (the on-disk footprint the paper compares).
func (d *Dataset) BuildIndexed(v Variant) ([]query.IndexedSegment, int64, error) {
	var out []query.IndexedSegment
	var bytes int64
	for si := 0; si < d.NumSegments; si++ {
		b, err := segment.NewBuilder(d.Name, fmt.Sprintf("%s_%d", d.Name, si), d.Schema, v.Index)
		if err != nil {
			return nil, 0, err
		}
		for _, row := range d.Rows(si) {
			if err := b.Add(row); err != nil {
				return nil, 0, err
			}
		}
		seg, err := b.Build()
		if err != nil {
			return nil, 0, err
		}
		is := query.IndexedSegment{Seg: seg}
		if v.StarTree != nil {
			tree, err := startree.Build(seg, *v.StarTree)
			if err != nil {
				return nil, 0, err
			}
			is.Tree = tree
			data, err := tree.Marshal()
			if err != nil {
				return nil, 0, err
			}
			seg.SetStarTreeData(data)
		}
		blob, err := seg.Marshal()
		if err != nil {
			return nil, 0, err
		}
		bytes += int64(len(blob))
		out = append(out, is)
	}
	return out, bytes, nil
}

func mustSchema(name string, fields []segment.FieldSpec) *segment.Schema {
	s, err := segment.NewSchema(name, fields)
	if err != nil {
		panic(err)
	}
	return s
}

func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }
