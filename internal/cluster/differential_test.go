package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/metrics"
)

// differentialQueries builds the mixed corpus: plain aggregations, group-bys
// (with and without TOP), ordered selections, and filters that prune to
// empty — each against both the offline and the realtime table.
func differentialQueries() []string {
	tables := []string{"events", "rtevents"}
	aggs := []string{
		"count(*)", "sum(clicks)", "min(clicks)", "max(clicks)", "avg(clicks)",
		"count(*), sum(clicks), min(day), max(day)",
	}
	filters := []string{
		"",
		"WHERE country = 'us'",
		"WHERE country IN ('de', 'fr')",
		"WHERE memberId = 7",
		"WHERE clicks >= 100 AND clicks < 150",
		"WHERE day BETWEEN 101 AND 103",
		"WHERE NOT country = 'us'",
		"WHERE day > 9000",      // pruned to empty by zone maps
		"WHERE memberId = 4242", // matches nothing anywhere
	}
	var qs []string
	for _, tb := range tables {
		for _, agg := range aggs {
			for _, f := range filters {
				qs = append(qs, strings.TrimSpace(fmt.Sprintf("SELECT %s FROM %s %s", agg, tb, f)))
			}
		}
	}
	groupAggs := []string{"count(*)", "sum(clicks)", "max(clicks)"}
	groupCols := []string{"country", "memberId", "day"}
	groupFilters := []string{"", "WHERE country IN ('us', 'de')", "WHERE clicks < 120", "WHERE day > 9000"}
	for _, tb := range tables {
		for _, agg := range groupAggs {
			for _, col := range groupCols {
				for _, f := range groupFilters {
					qs = append(qs, strings.TrimSpace(fmt.Sprintf("SELECT %s FROM %s %s GROUP BY %s", agg, tb, f, col)))
				}
			}
		}
	}
	selections := []string{
		"SELECT memberId, clicks FROM %s WHERE country = 'us' ORDER BY clicks LIMIT 20",
		"SELECT country, clicks FROM %s WHERE memberId = 3 ORDER BY clicks DESC LIMIT 10",
		"SELECT clicks FROM %s WHERE clicks BETWEEN 42 AND 90 ORDER BY clicks",
		"SELECT memberId, clicks FROM %s WHERE day > 9000 ORDER BY clicks LIMIT 5",
		"SELECT clicks, day FROM %s WHERE country = 'fr' ORDER BY clicks DESC LIMIT 7, 13",
		"SELECT country, memberId, clicks FROM %s ORDER BY clicks LIMIT 25",
	}
	for _, tb := range tables {
		for _, s := range selections {
			qs = append(qs, fmt.Sprintf(s, tb))
		}
		qs = append(qs,
			"SELECT count(*) FROM "+tb+" GROUP BY country TOP 2",
			"SELECT sum(clicks) FROM "+tb+" GROUP BY memberId TOP 5",
			"SELECT count(*) FROM "+tb+" WHERE clicks >= 10 GROUP BY day TOP 3",
			"SELECT max(clicks) FROM "+tb+" GROUP BY country TOP 1",
		)
	}
	return qs
}

// canonicalResponse renders the deterministic part of a response — columns,
// rows, stats, partial flag, exceptions — to a comparable string. Row order
// is semantics when the query has an ORDER BY (clicks is a unique key in
// this corpus, so ordered results are fully deterministic); without one the
// rows are a set and are canonicalized by sorting.
func canonicalResponse(pqlText string, res *broker.Response) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprintf("%#v", r)
	}
	if !strings.Contains(pqlText, "ORDER BY") && !strings.Contains(pqlText, "GROUP BY") {
		sort.Strings(rows)
	}
	return fmt.Sprintf("cols=%#v rows=%v stats=%+v partial=%v exceptions=%#v",
		res.Columns, rows, res.Stats, res.Partial, res.Exceptions)
}

// TestDifferentialMemVsTCP runs the full mixed corpus through two brokers on
// one cluster — one scattering over direct in-memory calls, one over the
// framed TCP data plane — and requires identical responses, stats included.
// The streamed wire path must be indistinguishable from the buffered one.
func TestDifferentialMemVsTCP(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: broker.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	// Realtime table: flush a few segments and leave consuming tails, so the
	// corpus crosses committed and in-memory realtime data.
	if _, err := c.Streams.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	produceEvents(t, c, "events", 0, 200)
	if err := c.WaitForOnline("rtevents_REALTIME", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	tcpReg, err := c.StartTCPTransport()
	if err != nil {
		t.Fatal(err)
	}
	tcpBr := broker.New(broker.Config{
		Cluster:  c.Name,
		Instance: "broker-tcp",
		Seed:     7,
		Metrics:  metrics.NewRegistry(),
	}, c.Store, tcpReg)
	if err := tcpBr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tcpBr.Stop()

	// Both brokers may route to different replicas, so wait until every
	// realtime replica has consumed everything: both paths must agree on the
	// full count before determinism is even possible.
	settle := func(br *broker.Broker, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			res, err := br.Execute(context.Background(), "SELECT count(*) FROM rtevents", "")
			if err == nil && !res.Partial && res.Rows[0][0].(int64) == 200 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s broker never saw all 200 realtime rows (last: %v, %v)", what, res, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	settle(c.Broker(), "mem")
	settle(tcpBr, "tcp")

	queries := differentialQueries()
	if len(queries) < 200 {
		t.Fatalf("corpus has %d queries, want >= 200", len(queries))
	}
	mismatches := 0
	for _, pqlText := range queries {
		memRes, err := c.Broker().Execute(context.Background(), pqlText, "")
		if err != nil {
			t.Fatalf("mem broker failed %q: %v", pqlText, err)
		}
		tcpRes, err := tcpBr.Execute(context.Background(), pqlText, "")
		if err != nil {
			t.Fatalf("tcp broker failed %q: %v", pqlText, err)
		}
		for _, res := range []*broker.Response{memRes, tcpRes} {
			if res.Partial || res.ServersResponded != res.ServersQueried {
				t.Fatalf("degraded response for %q: partial=%v %d/%d %v",
					pqlText, res.Partial, res.ServersResponded, res.ServersQueried, res.Exceptions)
			}
		}
		// ResultCacheHit is the one permitted divergence between a cached
		// and a cold response; the settle loops above prime each broker's
		// result cache at different points in the realtime transition
		// stream, so the flag may legitimately differ per broker here.
		memRes.Stats.ResultCacheHit = false
		tcpRes.Stats.ResultCacheHit = false
		if m, tc := canonicalResponse(pqlText, memRes), canonicalResponse(pqlText, tcpRes); m != tc {
			mismatches++
			t.Errorf("transport divergence on %q:\n  mem: %s\n  tcp: %s", pqlText, m, tc)
			if mismatches >= 5 {
				t.Fatal("too many divergences, aborting")
			}
		}
	}

	// Sanity-check the corpus exercised what it claims: at least one query
	// pruned everything and still matched across transports.
	res, err := tcpBr.Execute(context.Background(), "SELECT count(*) FROM events WHERE day > 9000", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("pruned-to-empty count = %d", got)
	}
	if res.Stats.NumDocsScanned != 0 {
		t.Fatalf("pruned-to-empty scanned %d docs", res.Stats.NumDocsScanned)
	}
}
