package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/controller"
	"pinot/internal/helix"
	"pinot/internal/segment"
	"pinot/internal/server"
	"pinot/internal/startree"
	"pinot/internal/table"
)

func eventsSchema(t testing.TB) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("events", []segment.FieldSpec{
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "memberId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildBlob(t testing.TB, name string, start, n int, dayBase int64) []byte {
	t.Helper()
	b, err := segment.NewBuilder("events", name, eventsSchema(t), segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	countries := []string{"us", "de", "fr"}
	for i := start; i < start+n; i++ {
		err := b.Add(segment.Row{countries[i%3], int64(i % 20), int64(i), dayBase + int64(i%5)})
		if err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func offlineConfig(t testing.TB, replicas int) *table.Config {
	return &table.Config{
		Name:     "events",
		Type:     table.Offline,
		Schema:   eventsSchema(t),
		Replicas: replicas,
	}
}

func TestOfflineUploadAndQuery(t *testing.T) {
	c, err := NewLocal(Options{Controllers: 2, Servers: 3, Brokers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 2)); err != nil {
		t.Fatal(err)
	}
	// Duplicate table rejected.
	if err := c.AddTable(offlineConfig(t, 2)); err == nil {
		t.Fatal("duplicate table accepted")
	}
	for i := 0; i < 4; i++ {
		blob := buildBlob(t, fmt.Sprintf("events_%d", i), i*100, 100, 100)
		if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForOnline("events_OFFLINE", 4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result: %v", res.Exceptions)
	}
	if got := res.Rows[0][0].(int64); got != 400 {
		t.Fatalf("count = %d, want 400", got)
	}
	if got := res.Rows[0][1].(float64); got != float64(399*400/2) {
		t.Fatalf("sum = %v", got)
	}
	// Replication: every segment has 2 online replicas.
	ev, err := c.ExternalView("events_OFFLINE")
	if err != nil {
		t.Fatal(err)
	}
	for seg := range ev.Partitions {
		if n := len(ev.InstancesFor(seg, helix.StateOnline)); n != 2 {
			t.Fatalf("segment %s has %d replicas", seg, n)
		}
	}
	// Group-by through the full distributed path.
	gres, err := c.Execute(context.Background(), "SELECT count(*) FROM events GROUP BY country TOP 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Rows) != 3 {
		t.Fatalf("groups = %v", gres.Rows)
	}
	var total int64
	for _, row := range gres.Rows {
		total += row[1].(int64)
	}
	if total != 400 {
		t.Fatalf("group total = %d", total)
	}
	// Unknown tables error.
	if _, err := c.Execute(context.Background(), "SELECT count(*) FROM nosuch"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestSegmentReplaceRefreshes(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 50, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Replace with a bigger version (updates and corrections, paper 3.1).
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 80, 100)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
		if err == nil && !res.Partial && len(res.Rows) == 1 {
			if res.Rows[0][0].(int64) == 80 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("segment replace never took effect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQuotaEnforced(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cfg := offlineConfig(t, 1)
	cfg.QuotaBytes = 4096
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	blob := buildBlob(t, "events_0", 0, 200, 100)
	if int64(len(blob)) < cfg.QuotaBytes {
		if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
			t.Fatal(err)
		}
	}
	big := buildBlob(t, "events_big", 0, 5000, 100)
	if err := c.UploadSegment("events_OFFLINE", big); err == nil {
		t.Fatal("over-quota segment accepted")
	}
}

func TestServerFailureGracefulDegradation(t *testing.T) {
	c, err := NewLocal(Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.UploadSegment("events_OFFLINE", buildBlob(t, fmt.Sprintf("events_%d", i), i*10, 10, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForOnline("events_OFFLINE", 6, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill one server: with 2 replicas everything stays queryable once
	// the routing tables refresh.
	c.Servers[0].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
		if err == nil && !res.Partial && res.Rows[0][0].(int64) == 60 {
			break
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("query after failure: %v", err)
			}
			t.Fatalf("query never recovered: partial=%v rows=%v", res.Partial, res.Rows)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestControllerFailover(t *testing.T) {
	c, err := NewLocal(Options{Controllers: 3, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	leader, ok := c.Leader()
	if !ok {
		t.Fatal("no leader")
	}
	if err := leader.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Non-leaders reject admin operations.
	for _, ctrl := range c.Controllers {
		if !ctrl.IsLeader() {
			if err := ctrl.UploadSegment("events_OFFLINE", buildBlob(t, "x", 0, 5, 100)); err != controller.ErrNotLeader {
				t.Fatalf("non-leader upload: %v", err)
			}
		}
	}
	leader.Stop()
	deadline := time.Now().Add(5 * time.Second)
	var newLeader *controller.Controller
	for time.Now().Before(deadline) {
		if l, ok := c.Leader(); ok && l != leader {
			newLeader = l
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("no failover")
	}
	// The new leader serves uploads.
	if err := newLeader.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 30, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
	if err != nil || res.Rows[0][0].(int64) != 30 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestRetentionGC(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1, ControllerTemplate: controller.Config{RetentionInterval: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cfg := offlineConfig(t, 1)
	cfg.RetentionUnits = 10
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	// Old segment: days 100-104. New segment: days 200-204.
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_old", 0, 20, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_new", 0, 20, 200)); err != nil {
		t.Fatal(err)
	}
	// The old segment (MaxTime 104 < 204-10) must be garbage collected.
	deadline := time.Now().Add(5 * time.Second)
	for {
		leader, _ := c.Leader()
		metas, err := leader.SegmentMetas("events_OFFLINE")
		if err == nil && len(metas) == 1 && metas[0].Name == "events_new" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention never collected old segment: %v", metas)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Queries see only retained data.
	deadline = time.Now().Add(5 * time.Second)
	for {
		res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
		if err == nil && !res.Partial && res.Rows[0][0].(int64) == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query still sees expired data")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func realtimeConfig(t testing.TB, replicas, flushRows int) *table.Config {
	return &table.Config{
		Name:               "rtevents",
		Type:               table.Realtime,
		Schema:             eventsSchema(t),
		Replicas:           replicas,
		StreamTopic:        "events",
		FlushThresholdRows: flushRows,
	}
}

func produceEvents(t testing.TB, c *Cluster, topic string, start, n int) {
	th, err := c.Streams.Topic(topic)
	if err != nil {
		t.Fatal(err)
	}
	countries := []string{"us", "de", "fr"}
	for i := start; i < start+n; i++ {
		msg, _ := json.Marshal(map[string]any{
			"country":  countries[i%3],
			"memberId": i % 20,
			"clicks":   i,
			"day":      100 + i%5,
		})
		th.ProduceTo(i%th.NumPartitions(), []byte(fmt.Sprint(i%20)), msg)
	}
}

func TestRealtimeIngestionAndCompletion(t *testing.T) {
	c, err := NewLocal(Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Events are visible in near realtime, before any flush.
	produceEvents(t, c, "events", 0, 30)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 30, 5*time.Second)

	// Push past the flush threshold on both partitions: segments commit
	// via the completion protocol and the next consuming segments open.
	produceEvents(t, c, "events", 30, 170)
	if err := c.WaitForOnline("rtevents_REALTIME", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 200, 10*time.Second)

	// Committed segment metadata is durable and consistent.
	leader, _ := c.Leader()
	metas, err := leader.SegmentMetas("rtevents_REALTIME")
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, m := range metas {
		if m.Status == table.StatusDone {
			done++
			if m.EndOffset <= m.StartOffset {
				t.Fatalf("bad committed offsets: %+v", m)
			}
			if m.ObjectKey == "" {
				t.Fatalf("committed segment missing blob: %+v", m)
			}
		}
	}
	if done < 2 {
		t.Fatalf("committed segments = %d, want >= 2", done)
	}
	// All replicas of each committed segment are ONLINE with identical
	// data: verify the count is exact (no duplicates or gaps across
	// replicas and the consuming remainder).
	res, err := c.Execute(context.Background(), "SELECT sum(clicks) FROM rtevents")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != float64(199*200/2) {
		t.Fatalf("sum = %v, want %v", got, 199*200/2)
	}
}

func waitForCount(t testing.TB, c *Cluster, q string, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last any
	for time.Now().Before(deadline) {
		res, err := c.Execute(context.Background(), q)
		if err == nil && len(res.Rows) == 1 {
			last = res.Rows[0][0]
			if got, ok := res.Rows[0][0].(int64); ok && got == want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d (last %v)", q, want, last)
}

func TestHybridTableTimeBoundary(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	// Realtime side of the hybrid table.
	rtCfg := realtimeConfig(t, 1, 1000)
	rtCfg.Name = "events"
	if err := c.AddTable(rtCfg); err != nil {
		t.Fatal(err)
	}
	// Offline side: days 100..104, 50 rows (clicks 0..49).
	if err := c.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 50, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("events_REALTIME", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Realtime events: days 104..110 (overlapping day 104 with offline).
	th, _ := c.Streams.Topic("events")
	rtRows := 0
	var rtClicksAtOrAfter104 int64
	for day := int64(104); day <= 110; day++ {
		for i := 0; i < 5; i++ {
			clicks := int64(1000 + rtRows)
			msg, _ := json.Marshal(map[string]any{"country": "us", "memberId": 1, "clicks": clicks, "day": day})
			th.ProduceTo(0, nil, msg)
			rtRows++
			rtClicksAtOrAfter104 += clicks
		}
	}
	waitForCount(t, c, "SELECT count(*) FROM events WHERE clicks >= 1000", int64(rtRows), 5*time.Second)

	// Hybrid query: offline serves day < 104 (its max is 104), realtime
	// serves day >= 104. Offline rows on day 104 are excluded to avoid
	// double counting with realtime (paper Figure 6).
	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	// Offline rows with day < 104: clicks i where i%5 != 4 (day=100+i%5).
	offCount, offSum := 0, int64(0)
	for i := 0; i < 50; i++ {
		if 100+int64(i%5) < 104 {
			offCount++
			offSum += int64(i)
		}
	}
	wantCount := int64(offCount + rtRows)
	wantSum := float64(offSum + rtClicksAtOrAfter104)
	if got := res.Rows[0][0].(int64); got != wantCount {
		t.Fatalf("hybrid count = %d, want %d", got, wantCount)
	}
	if got := res.Rows[0][1].(float64); got != wantSum {
		t.Fatalf("hybrid sum = %v, want %v", got, wantSum)
	}
}

func TestMinionPurgeTask(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1, Minions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 60, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Purge memberId 7 (3 rows: 7, 27, 47).
	leader, _ := c.Leader()
	err = leader.ScheduleTask(&controller.Task{
		ID:          "purge-1",
		Type:        controller.TaskPurge,
		Resource:    "events_OFFLINE",
		Segment:     "events_0",
		PurgeColumn: "memberId",
		PurgeValues: []string{"7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitForCount(t, c, "SELECT count(*) FROM events WHERE memberId = 7", 0, 10*time.Second)
	waitForCount(t, c, "SELECT count(*) FROM events", 57, 10*time.Second)
	completed, failed := c.Minions[0].Counters()
	if completed != 1 || failed != 0 {
		t.Fatalf("minion counters = %d/%d", completed, failed)
	}
	// Task marked completed.
	tasks, err := leader.Tasks()
	if err != nil || len(tasks) != 1 || tasks[0].Status != controller.TaskCompleted {
		t.Fatalf("tasks = %+v err=%v", tasks, err)
	}
}

func TestDeleteTable(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	leader, _ := c.Leader()
	if err := leader.DeleteTable("events", table.Offline); err != nil {
		t.Fatal(err)
	}
	// Object store cleaned up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		keys, _ := c.Objects.List("segments/events_OFFLINE/")
		if len(keys) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blobs remain: %v", keys)
		}
		time.Sleep(10 * time.Millisecond)
	}
	tables, _ := leader.Tables()
	if len(tables) != 0 {
		t.Fatalf("tables = %v", tables)
	}
}

func TestStarTreeThroughCluster(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cfg := offlineConfig(t, 1)
	cfg.StarTree = &startree.Config{
		DimensionSplitOrder: []string{"country", "day"},
		Metrics:             []string{"clicks"},
		MaxLeafRecords:      10,
	}
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	// Build the segment with a star tree attached (as a batch pipeline
	// honouring the table config would).
	b, _ := segment.NewBuilder("events", "events_0", eventsSchema(t), segment.IndexConfig{})
	for i := 0; i < 500; i++ {
		_ = b.Add(segment.Row{[]string{"us", "de", "fr"}[i%3], int64(i % 20), int64(i), int64(100 + i%5)})
	}
	seg, _ := b.Build()
	tree, err := startree.Build(seg, *cfg.StarTree)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := tree.Marshal()
	seg.SetStarTreeData(data)
	blob, _ := seg.Marshal()
	if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(context.Background(), "SELECT sum(clicks) FROM events WHERE country = 'us' GROUP BY day TOP 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StarTreeSegments != 1 {
		t.Fatalf("star tree not used through cluster: %+v", res.Stats)
	}
	want := map[int64]float64{}
	for i := 0; i < 500; i++ {
		if i%3 == 0 {
			want[int64(100+i%5)] += float64(i)
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].(float64) != want[row[0].(int64)] {
			t.Fatalf("group %v = %v, want %v", row[0], row[1], want[row[0].(int64)])
		}
	}
}

func TestTenancyThrottlingThroughServer(t *testing.T) {
	c, err := NewLocal(Options{
		Servers: 1,
		ServerTemplate: server.Config{
			TenantTokens: 0.000001, // effectively empty after first query
			TenantRefill: 0.0000001,
		},
		// The throttle only fires when the repeated query reaches the
		// server; a broker cache hit would answer it without spending
		// tenant tokens.
		BrokerTemplate: broker.Config{DisableResultCache: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 1000, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// First query drains the bucket.
	if _, err := c.Broker().Execute(context.Background(), "SELECT sum(clicks) FROM events WHERE memberId = 3", "heavy"); err != nil {
		t.Fatal(err)
	}
	// Second query for the same tenant must hit the throttle (times out).
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := c.Broker().Execute(ctx, "SELECT sum(clicks) FROM events WHERE memberId = 3", "heavy")
	if err == nil && !res.Partial {
		t.Fatal("heavy tenant not throttled")
	}
	// A different tenant is unaffected.
	res, err = c.Broker().Execute(context.Background(), "SELECT count(*) FROM events", "light")
	if err != nil || res.Partial {
		t.Fatalf("light tenant throttled: %v %v", err, res)
	}
}

func TestLargeClusterRoutingThroughCluster(t *testing.T) {
	c, err := NewLocal(Options{
		Servers: 6,
		BrokerTemplate: broker.Config{
			Strategy:      broker.StrategyLargeCluster,
			TargetServers: 2,
			Seed:          7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := c.UploadSegment("events_OFFLINE", buildBlob(t, fmt.Sprintf("events_%d", i), i*10, 10, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForOnline("events_OFFLINE", 12, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 120 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// The large-cluster strategy touches far fewer servers than the
	// fleet.
	if res.ServersQueried > 4 {
		t.Fatalf("servers queried = %d, want <= 4", res.ServersQueried)
	}
}
