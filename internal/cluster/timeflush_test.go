package cluster

import (
	"context"
	"testing"
	"time"

	"pinot/internal/server"
	"pinot/internal/table"
	"pinot/internal/transport"
)

// TestTimeBasedFlushWithDivergentReplicas exercises the completion
// protocol's CATCHUP/DISCARD reconciliation: replicas flushing on local
// clocks reach the end criteria at different offsets (paper 3.3.6: "two
// consumers consuming for a certain amount of time based on their local
// clock will likely diverge"), yet the committed segments are identical and
// no event is lost or duplicated.
func TestTimeBasedFlushWithDivergentReplicas(t *testing.T) {
	c, err := NewLocal(Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	cfg := realtimeConfig(t, 2, 0)
	cfg.FlushThresholdRows = 0
	cfg.FlushThresholdMillis = 150
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Trickle events across several flush windows so replicas keep
	// hitting the time criterion mid-stream.
	const total = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i += 40 {
			produceEvents(t, c, "events", i, 40)
			time.Sleep(60 * time.Millisecond)
		}
	}()
	<-done
	// Everything must become visible exactly once.
	waitForCount(t, c, "SELECT count(*) FROM rtevents", total, 20*time.Second)
	// At least one segment committed via the time criterion.
	leader, _ := c.Leader()
	deadline := time.Now().Add(10 * time.Second)
	for {
		metas, err := leader.SegmentMetas("rtevents_REALTIME")
		if err != nil {
			t.Fatal(err)
		}
		committed := 0
		for _, m := range metas {
			if m.Status == table.StatusDone {
				committed++
				if m.EndOffset <= m.StartOffset {
					t.Fatalf("committed segment with bad offsets: %+v", m)
				}
			}
		}
		if committed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no segment committed on time criterion: %+v", metas)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The sum invariant catches duplicates as well as losses.
	res, err := c.Execute(context.Background(), "SELECT sum(clicks) FROM rtevents")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != float64(total*(total-1)/2) {
		t.Fatalf("sum = %v, want %v", got, total*(total-1)/2)
	}
}

// TestCatchupPathExercised forces replica divergence: a burst of events with
// a tiny consume batch and a time-based flush means the two replicas reach
// their local end criteria at different offsets, so the controller must
// issue CATCHUP (and possibly DISCARD) instructions before the segment
// commits.
func TestCatchupPathExercised(t *testing.T) {
	c, err := NewLocal(Options{
		Servers:        2,
		ServerTemplate: server.Config{ConsumeBatch: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	cfg := realtimeConfig(t, 2, 0)
	cfg.FlushThresholdRows = 0
	cfg.FlushThresholdMillis = 60
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Produce continuously across many flush windows: each replica's
	// timer fires at a slightly different instant, and the stream head
	// keeps moving, so their end offsets differ.
	const total = 30000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i += 250 {
			produceEvents(t, c, "events", i, 250)
			time.Sleep(4 * time.Millisecond)
		}
	}()
	<-done
	waitForCount(t, c, "SELECT count(*) FROM rtevents", total, 30*time.Second)
	// The sum invariant proves no loss/duplication despite divergence.
	res, err := c.Execute(context.Background(), "SELECT sum(clicks) FROM rtevents")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != float64(total)*(total-1)/2 {
		t.Fatalf("sum = %v, want %v", got, float64(total)*(total-1)/2)
	}
	// Completion is asynchronous to visibility (consuming segments are
	// queryable before they commit): wait until instructions flowed.
	var catchups, discards, commits int64
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		catchups, discards, commits = 0, 0, 0
		for _, s := range c.Servers {
			counts := s.CompletionActionCounts()
			catchups += counts[transport.ActionCatchup]
			discards += counts[transport.ActionDiscard]
			commits += counts[transport.ActionCommit]
		}
		if commits > 0 && (catchups > 0 || discards > 0) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if commits == 0 {
		t.Fatal("no COMMIT instruction observed")
	}
	// At least one replica diverged and was told to catch up or discard.
	if catchups == 0 && discards == 0 {
		t.Fatalf("replicas never diverged (catchup=%d discard=%d); tighten the test parameters", catchups, discards)
	}
	t.Logf("completion actions: commits=%d catchups=%d discards=%d", commits, catchups, discards)
}
