package cluster

import (
	"context"
	"testing"
	"time"

	"pinot/internal/segment"
	"pinot/internal/table"
)

// derivedConfig is the realtime events table with two ingestion-time
// transforms: a numeric time bucket and an uppercased dimension. Both
// materialize as real columns in the consuming segments.
func derivedConfig(t testing.TB, replicas, flushRows int) *table.Config {
	cfg := realtimeConfig(t, replicas, flushRows)
	cfg.DerivedColumns = []table.DerivedColumn{
		{Name: "dayBucket", Expr: "timeBucket(day, 2)", Type: segment.TypeLong},
		{Name: "countryUpper", Expr: "upper(country)", Type: segment.TypeString},
	}
	return cfg
}

func TestRealtimeDerivedColumns(t *testing.T) {
	c, err := NewLocal(Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(derivedConfig(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Derived columns are queryable while the segment is still consuming.
	produceEvents(t, c, "events", 0, 30)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 30, 5*time.Second)
	res, err := c.Execute(context.Background(), "SELECT count(*) FROM rtevents GROUP BY countryUpper TOP 10")
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]bool{}
	for _, row := range res.Rows {
		groups[row[0].(string)] = true
	}
	for _, g := range []string{"US", "DE", "FR"} {
		if !groups[g] {
			t.Fatalf("countryUpper groups = %v, missing %s", res.Rows, g)
		}
	}

	// Push past the flush threshold: derived values must survive sealing
	// (they are real columns, rebuilt into the immutable segment).
	produceEvents(t, c, "events", 30, 170)
	if err := c.WaitForOnline("rtevents_REALTIME", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 200, 10*time.Second)

	// day = 100 + i%5, so dayBucket = timeBucket(day, 2) = 100 covers
	// i%5 ∈ {0, 1}: sum(clicks) = Σ i = 3900 + 3940.
	want := float64(7840)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err = c.Execute(context.Background(), "SELECT sum(clicks) FROM rtevents WHERE dayBucket = 100")
		if err == nil && !res.Partial && len(res.Rows) == 1 && res.Rows[0][0].(float64) == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sum(clicks) WHERE dayBucket = 100: got %+v, want %v", res, want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// timeBucket(100..104, 2) yields exactly the buckets 100, 102, 104.
	res, err = c.Execute(context.Background(), "SELECT count(*) FROM rtevents GROUP BY dayBucket TOP 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("dayBucket groups = %v, want 3", res.Rows)
	}
	var total int64
	for _, row := range res.Rows {
		total += row[1].(int64)
	}
	if total != 200 {
		t.Fatalf("dayBucket group total = %d, want 200", total)
	}
}

// TestDerivedColumnConfigValidation pins the config-level rules: expressions
// must parse, reference real single-value columns, not collide with schema
// names, and match their declared type.
func TestDerivedColumnConfigValidation(t *testing.T) {
	mk := func(d ...table.DerivedColumn) *table.Config {
		cfg := realtimeConfig(t, 1, 50)
		cfg.DerivedColumns = d
		return cfg
	}
	good := mk(table.DerivedColumn{Name: "b", Expr: "timeBucket(day, 7)", Type: segment.TypeLong})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid derived column rejected: %v", err)
	}
	eff, err := good.EffectiveSchema()
	if err != nil {
		t.Fatal(err)
	}
	f, ok := eff.Field("b")
	if !ok || f.Type != segment.TypeLong || f.Kind != segment.Dimension || !f.SingleValue {
		t.Fatalf("effective schema field = %+v, ok=%v", f, ok)
	}
	bad := []*table.Config{
		mk(table.DerivedColumn{Name: "", Expr: "clicks + 1", Type: segment.TypeLong}),
		mk(table.DerivedColumn{Name: "clicks", Expr: "clicks + 1", Type: segment.TypeLong}),
		mk(table.DerivedColumn{Name: "x", Expr: "clicks +", Type: segment.TypeLong}),
		mk(table.DerivedColumn{Name: "x", Expr: "nosuch + 1", Type: segment.TypeLong}),
		mk(table.DerivedColumn{Name: "x", Expr: "clicks / 2", Type: segment.TypeLong}), // division is double
		mk(table.DerivedColumn{Name: "x", Expr: "upper(clicks)", Type: segment.TypeString}),
		mk(
			table.DerivedColumn{Name: "x", Expr: "clicks + 1", Type: segment.TypeLong},
			table.DerivedColumn{Name: "x", Expr: "clicks + 2", Type: segment.TypeLong},
		),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad derived config %d accepted", i)
		}
	}
}
