package cluster

import (
	"context"
	"testing"
	"time"

	"pinot/internal/segment"
)

// TestSchemaEvolutionOnTheFly exercises the paper 5.2 flow: "Pinot allows
// changing schemas on the fly to add new columns without downtime. When a
// new column is added to an existing schema, it is automatically added with
// a default value on all previously existing segments."
func TestSchemaEvolutionOnTheFly(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cfg := offlineConfig(t, 1)
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 30, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Queries against the yet-unknown column fail.
	if res, err := c.Execute(context.Background(), "SELECT count(*) FROM events WHERE region = 'null'"); err == nil && !res.Partial {
		t.Fatal("unknown column accepted before schema change")
	}

	// Add the column to the table schema without downtime.
	leader, _ := c.Leader()
	newSchema, err := cfg.Schema.WithColumn(segment.FieldSpec{
		Name: "region", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	updated := *cfg
	updated.Schema = newSchema
	if err := leader.UpdateTable(&updated); err != nil {
		t.Fatal(err)
	}
	// Updating a non-existent table fails.
	bogus := updated
	bogus.Name = "nosuch"
	if err := leader.UpdateTable(&bogus); err == nil {
		t.Fatal("update of missing table accepted")
	}

	// Existing segments surface the column with its default value. The
	// server caches the old config; a fresh upload (or reload) picks up
	// the new schema — here the next segment upload triggers it and both
	// old and new segments answer.
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_1", 100, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.Execute(context.Background(), "SELECT count(*) FROM events WHERE region = 'null'")
		if err == nil && !res.Partial && len(res.Rows) == 1 && res.Rows[0][0].(int64) == 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schema evolution never took effect: res=%v err=%v", res, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
