package cluster

import (
	"context"
	"testing"

	"pinot/internal/metrics"
)

// TestDictExprCacheEndToEnd drives the dictionary-space expression memo
// cache through a real cluster: two different queries sharing one group-by
// expression build the memo once per segment and reuse it, with the
// per-table "dictexpr" tier families moving on the shared registry — the
// same exposition /metrics serves.
func TestDictExprCacheEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := NewLocal(Options{Servers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 1)

	// Cold: the memo for lower(country) is built (a miss + fill) on each of
	// the four segments.
	res, err := c.Execute(context.Background(), "SELECT count(*) FROM events GROUP BY lower(country) TOP 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DictExprSegments != 4 {
		t.Fatalf("DictExprSegments = %d, want 4 (one per segment)", res.Stats.DictExprSegments)
	}
	misses := reg.Value("pinot_cache_misses_total", "dictexpr", "events")
	if misses != 4 {
		t.Fatalf("cold run: dictexpr misses = %d, want 4", misses)
	}
	if hits := reg.Value("pinot_cache_hits_total", "dictexpr", "events"); hits != 0 {
		t.Fatalf("cold run: dictexpr hits = %d, want 0", hits)
	}
	if bytes := reg.Value("pinot_cache_bytes", "dictexpr"); bytes <= 0 {
		t.Fatalf("dictexpr tier holds %d bytes after memo fill", bytes)
	}

	// Warm: a DIFFERENT query (no broker result-cache short circuit) with
	// the same canonical expression reuses all four memos.
	res, err = c.Execute(context.Background(), "SELECT sum(clicks) FROM events GROUP BY lower(country) TOP 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DictExprSegments != 4 {
		t.Fatalf("warm DictExprSegments = %d, want 4", res.Stats.DictExprSegments)
	}
	if hits := reg.Value("pinot_cache_hits_total", "dictexpr", "events"); hits != 4 {
		t.Fatalf("warm run: dictexpr hits = %d, want 4", hits)
	}
	if got := reg.Value("pinot_cache_misses_total", "dictexpr", "events"); got != misses {
		t.Fatalf("warm run added misses: %d -> %d", misses, got)
	}

	// An expression predicate matching nothing prunes every segment
	// server-side: the cluster answer is an empty count with zero docs
	// scanned, and the pruning decisions count as dictionary-space service.
	res, err = c.Execute(context.Background(), "SELECT count(*) FROM events WHERE upper(country) = 'NOPE'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SegmentsPrunedByValue != 4 || res.Stats.NumDocsScanned != 0 {
		t.Fatalf("no-match expression predicate did not prune: %+v", res.Stats)
	}
	if res.Stats.DictExprSegments != 4 {
		t.Fatalf("pruning DictExprSegments = %d, want 4", res.Stats.DictExprSegments)
	}
}
