// Package cluster assembles a complete in-process Pinot deployment:
// metadata store, event streams, object store, a set of controllers (one
// elected leader), servers, brokers and minions, wired over direct
// in-memory transport. It is the substrate for the examples, the
// integration tests and the benchmark harness; the cmd/pinot binary exposes
// the same cluster over HTTP.
package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"pinot/internal/broker"
	"pinot/internal/chaos"
	"pinot/internal/controller"
	"pinot/internal/helix"
	"pinot/internal/metrics"
	"pinot/internal/minion"
	"pinot/internal/objstore"
	"pinot/internal/server"
	"pinot/internal/stream"
	"pinot/internal/table"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

// Options sizes and tunes a local cluster.
type Options struct {
	Name        string
	Controllers int
	Servers     int
	Brokers     int
	Minions     int
	// ServerTemplate seeds each server's config (instance/cluster fields
	// are overwritten).
	ServerTemplate server.Config
	// BrokerTemplate seeds each broker's config.
	BrokerTemplate broker.Config
	// ControllerTemplate seeds each controller's config.
	ControllerTemplate controller.Config
	// ChaosSeed seeds the fault-injection registry wrapped around the
	// broker→server transport (0 = 1, still deterministic).
	ChaosSeed int64
	// Transport selects the broker→server data plane: "" or "mem" for
	// direct in-memory calls (the default), "tcp" for the framed TCP
	// protocol over loopback listeners. Either way the chaos registry
	// wraps the base transport.
	Transport string
	// Metrics is the registry every component of the cluster records into.
	// Nil means a fresh registry per cluster, so concurrent test clusters
	// in one process never share counters.
	Metrics *metrics.Registry
}

func (o *Options) withDefaults() {
	if o.Name == "" {
		o.Name = "pinot"
	}
	if o.Controllers <= 0 {
		o.Controllers = 1
	}
	if o.Servers <= 0 {
		o.Servers = 1
	}
	if o.Brokers <= 0 {
		o.Brokers = 1
	}
}

// Cluster is a running local deployment.
type Cluster struct {
	Name        string
	Store       *zkmeta.Store
	Objects     objstore.Store
	Streams     *stream.Cluster
	Controllers []*controller.Controller
	Servers     []*server.Server
	Brokers     []*broker.Broker
	Minions     []*minion.Minion
	// Chaos injects deterministic faults into broker→server calls.
	Chaos *chaos.Registry
	// Metrics is the cluster-wide registry all components record into.
	Metrics *metrics.Registry

	adminSess *zkmeta.Session

	tcpServers []*transport.TCPQueryServer
	tcpAddrs   map[string]string
	tcpPool    *transport.Pool
}

// NewLocal builds and starts a cluster.
func NewLocal(opts Options) (*Cluster, error) {
	opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Cluster{
		Name:    opts.Name,
		Store:   zkmeta.NewStore(),
		Objects: objstore.NewMem(),
		Streams: stream.NewCluster(),
		Metrics: reg,
	}

	for i := 0; i < opts.Controllers; i++ {
		cfg := opts.ControllerTemplate
		cfg.Cluster = opts.Name
		cfg.Instance = fmt.Sprintf("controller%d", i+1)
		cfg.Metrics = reg
		ctrl := controller.New(cfg, c.Store, c.Objects, c.Streams)
		if err := ctrl.Start(); err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Controllers = append(c.Controllers, ctrl)
	}
	// Wait for a leader before admitting participants.
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		c.Shutdown()
		return nil, err
	}

	controllerClients := func() []transport.ControllerClient {
		out := make([]transport.ControllerClient, len(c.Controllers))
		for i, ctrl := range c.Controllers {
			out[i] = ctrl
		}
		return out
	}
	for i := 0; i < opts.Servers; i++ {
		cfg := opts.ServerTemplate
		cfg.Cluster = opts.Name
		cfg.Instance = fmt.Sprintf("server%d", i+1)
		cfg.Metrics = reg
		srv := server.New(cfg, c.Store, c.Objects, c.Streams, controllerClients)
		if err := srv.Start(); err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
	}

	base := transport.RegistryFunc(func(instance string) (transport.ServerClient, bool) {
		for _, s := range c.Servers {
			if s.Instance() == instance {
				return s, true
			}
		}
		return nil, false
	})
	if opts.Transport == "tcp" {
		tcpReg, err := c.StartTCPTransport()
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		base = transport.RegistryFunc(tcpReg.ServerClient)
	}
	// All broker traffic flows through the chaos registry; with no faults
	// configured it is a transparent passthrough.
	c.Chaos = chaos.NewRegistry(base, opts.ChaosSeed)
	registry := transport.Registry(c.Chaos)
	for i := 0; i < opts.Brokers; i++ {
		cfg := opts.BrokerTemplate
		cfg.Cluster = opts.Name
		cfg.Instance = fmt.Sprintf("broker%d", i+1)
		cfg.Metrics = reg
		br := broker.New(cfg, c.Store, registry)
		if err := br.Start(); err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Brokers = append(c.Brokers, br)
	}

	minionControllers := func() []minion.ControllerAPI {
		out := make([]minion.ControllerAPI, len(c.Controllers))
		for i, ctrl := range c.Controllers {
			out[i] = ctrl
		}
		return out
	}
	for i := 0; i < opts.Minions; i++ {
		mn := minion.New(minion.Config{Instance: fmt.Sprintf("minion%d", i+1), Metrics: reg}, minionControllers)
		mn.Start()
		c.Minions = append(c.Minions, mn)
	}

	c.adminSess = c.Store.NewSession()
	return c, nil
}

// StartTCPTransport starts a framed-TCP listener for every server on a
// loopback port and returns a registry that dials them through a shared
// connection pool. Idempotent: a second call returns a registry over the
// same listeners. NewLocal calls it when Options.Transport is "tcp";
// tests that want both transports side by side call it directly.
func (c *Cluster) StartTCPTransport() (transport.Registry, error) {
	if c.tcpAddrs == nil {
		c.tcpAddrs = map[string]string{}
		c.tcpPool = transport.NewPool()
		for _, s := range c.Servers {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			ts := transport.NewTCPQueryServer(s)
			go ts.Serve(lis)
			c.tcpServers = append(c.tcpServers, ts)
			c.tcpAddrs[s.Instance()] = lis.Addr().String()
		}
	}
	return transport.NewTCPRegistry(c.TCPAddr, c.tcpPool), nil
}

// TCPAddr resolves a server instance to its loopback data-plane address
// (after StartTCPTransport).
func (c *Cluster) TCPAddr(instance string) (string, bool) {
	addr, ok := c.tcpAddrs[instance]
	return addr, ok
}

// Shutdown stops every component.
func (c *Cluster) Shutdown() {
	for _, m := range c.Minions {
		m.Stop()
	}
	for _, b := range c.Brokers {
		b.Stop()
	}
	for _, s := range c.Servers {
		s.Stop()
	}
	for _, ctrl := range c.Controllers {
		ctrl.Stop()
	}
	for _, ts := range c.tcpServers {
		ts.Close()
	}
	if c.tcpPool != nil {
		c.tcpPool.Close()
	}
	if c.adminSess != nil {
		c.adminSess.Close()
	}
}

// Leader returns the current lead controller.
func (c *Cluster) Leader() (*controller.Controller, bool) {
	for _, ctrl := range c.Controllers {
		if ctrl.IsLeader() {
			return ctrl, true
		}
	}
	return nil, false
}

// WaitForLeader blocks until a controller wins the election.
func (c *Cluster) WaitForLeader(timeout time.Duration) (*controller.Controller, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ctrl, ok := c.Leader(); ok {
			return ctrl, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("cluster: no controller became leader within %v", timeout)
}

// Broker returns the first broker, the default query entry point.
func (c *Cluster) Broker() *broker.Broker { return c.Brokers[0] }

// Execute runs PQL through the first broker.
func (c *Cluster) Execute(ctx context.Context, pql string) (*broker.Response, error) {
	return c.Broker().Execute(ctx, pql, "")
}

// AddTable admits a table through the lead controller.
func (c *Cluster) AddTable(cfg *table.Config) error {
	ctrl, err := c.WaitForLeader(5 * time.Second)
	if err != nil {
		return err
	}
	return ctrl.AddTable(cfg)
}

// UploadSegment pushes a segment blob through the lead controller.
func (c *Cluster) UploadSegment(resource string, blob []byte) error {
	ctrl, err := c.WaitForLeader(5 * time.Second)
	if err != nil {
		return err
	}
	return ctrl.UploadSegment(resource, blob)
}

// WaitForSegments blocks until `count` segments of a resource are in the
// given state on at least one replica each.
func (c *Cluster) WaitForSegments(resource, state string, count int, timeout time.Duration) error {
	admin := helix.NewAdmin(c.adminSess, c.Name)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ev, err := admin.ExternalViewOf(resource)
		if err == nil {
			n := 0
			for seg := range ev.Partitions {
				if len(ev.InstancesFor(seg, state)) > 0 {
					n++
				}
			}
			if n >= count {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: %s did not reach %d %s segments within %v", resource, count, state, timeout)
}

// WaitForOnline waits for count segments of a resource to be ONLINE.
func (c *Cluster) WaitForOnline(resource string, count int, timeout time.Duration) error {
	return c.WaitForSegments(resource, helix.StateOnline, count, timeout)
}

// WaitForConsuming waits for count segments to be CONSUMING.
func (c *Cluster) WaitForConsuming(resource string, count int, timeout time.Duration) error {
	return c.WaitForSegments(resource, helix.StateConsuming, count, timeout)
}

// ExternalView reads a resource's external view.
func (c *Cluster) ExternalView(resource string) (*helix.ExternalView, error) {
	return helix.NewAdmin(c.adminSess, c.Name).ExternalViewOf(resource)
}
