package cluster

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"pinot/internal/chaos"
	"pinot/internal/qctx"
	"pinot/internal/transport"
)

// TestServerEnforcesMinimumTimeout is the regression test for the server-side
// deadline rule: execution is bounded by the MINIMUM of the server's
// DefaultTimeout, the request's TimeoutMillis and the broker's wire budget —
// a large request timeout must never extend past the server default, and a
// small one must tighten it.
func TestServerEnforcesMinimumTimeout(t *testing.T) {
	run := func(t *testing.T, c *Cluster, req *transport.QueryRequest, wantWithin time.Duration) {
		t.Helper()
		s := c.Servers[0]
		s.InjectLatency(2 * time.Second) // a straggler far beyond every timeout
		defer s.InjectLatency(0)
		start := time.Now()
		_, err := s.Execute(context.Background(), req)
		elapsed := time.Since(start)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want deadline exceeded", err)
		}
		if elapsed > wantWithin {
			t.Fatalf("server held the query for %v, want under %v", elapsed, wantWithin)
		}
	}

	t.Run("request tightens default", func(t *testing.T) {
		c, err := NewLocal(Options{Servers: 1, BrokerTemplate: chaosBrokerConfig()})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		loadOffline(t, c, 1)
		// Server default is 10s; the request says 50ms; the request wins.
		run(t, c, &transport.QueryRequest{
			Resource: "events_OFFLINE", PQL: "SELECT count(*) FROM events", TimeoutMillis: 50,
		}, time.Second)
		// The broker's wire budget tightens the same way.
		run(t, c, &transport.QueryRequest{
			Resource: "events_OFFLINE", PQL: "SELECT count(*) FROM events", BudgetMillis: 50,
		}, time.Second)
	})

	t.Run("default caps an oversized request", func(t *testing.T) {
		tmpl := Options{Servers: 1, BrokerTemplate: chaosBrokerConfig()}
		tmpl.ServerTemplate.DefaultTimeout = 75 * time.Millisecond
		c, err := NewLocal(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		loadOffline(t, c, 1)
		// The request asks for 30s; the 75ms server default still applies.
		run(t, c, &transport.QueryRequest{
			Resource: "events_OFFLINE", PQL: "SELECT count(*) FROM events", TimeoutMillis: 30_000,
		}, time.Second)
	})
}

// TestChaosStragglerAbandonedAtDeadline models the worst-behaved server: one
// that keeps grinding while IGNORING cancellation. The broker must still
// answer within its query timeout (abandoning the in-flight call, not joining
// it) and its gather goroutines must drain back to baseline once the
// straggler finally gives up — no goroutines held hostage past the deadline.
func TestChaosStragglerAbandonedAtDeadline(t *testing.T) {
	const stall = 1 * time.Second
	cfg := chaosBrokerConfig()
	cfg.QueryTimeout = 150 * time.Millisecond
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	// Warm up: the first query lazily creates per-server table managers and
	// their long-lived config-watch goroutines, which must be part of the
	// baseline.
	if _, err := c.Execute(context.Background(), "SELECT count(*) FROM events"); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	// Every replica stalls, so no retry or hedge can save the query: the only
	// correct outcome is a timely partial response.
	c.Chaos.SetFault("server1", chaos.Fault{StallFor: stall})
	c.Chaos.SetFault("server2", chaos.Fault{StallFor: stall})

	start := time.Now()
	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("straggler must degrade the query, not fail it: %v", err)
	}
	if elapsed >= stall {
		t.Fatalf("broker waited %v — it joined the straggler instead of abandoning at the %v deadline", elapsed, cfg.QueryTimeout)
	}
	if !res.Partial || res.ServersResponded != 0 {
		t.Fatalf("want empty partial result, got partial=%v responded=%d", res.Partial, res.ServersResponded)
	}
	abandoned := false
	for _, e := range res.ServerExceptions {
		if strings.Contains(e.Error, "abandoned after query deadline") {
			abandoned = true
		}
	}
	if !abandoned {
		t.Fatalf("no abandonment recorded in server exceptions: %+v", res.ServerExceptions)
	}
	c.Chaos.Clear("server1")
	c.Chaos.Clear("server2")

	// Once the stragglers' sleeps expire their goroutines must exit: the
	// buffered result channels absorb the late sends.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never drained: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterQueryTraceBudgetLedger asserts the client-visible lifecycle
// surface on the full distributed path: every response carries a query ID,
// a per-phase trace whose wall-clock ledger sums to no more than the measured
// elapsed time (queue/execute nest inside scatter and are excluded by
// WallSum), and per-query scan/memory accounting.
func TestClusterQueryTraceBudgetLedger(t *testing.T) {
	opts := Options{Servers: 2, BrokerTemplate: chaosBrokerConfig()}
	// Tenancy on, so the queue phase is exercised end to end.
	opts.ServerTemplate.TenantTokens = 100
	opts.ServerTemplate.TenantRefill = 100
	c, err := NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	start := time.Now()
	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events WHERE country != 'zz'")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	assertFullCount(t, res)
	if res.QueryID == "" {
		t.Fatal("missing query ID")
	}
	for _, p := range []qctx.Phase{
		qctx.PhaseParse, qctx.PhaseRoute, qctx.PhaseScatter,
		qctx.PhaseQueue, qctx.PhaseExecute, qctx.PhaseMerge, qctx.PhaseReduce,
	} {
		if _, ok := res.Trace[p]; !ok {
			t.Fatalf("trace missing phase %q: %v", p, res.Trace)
		}
	}
	if sum := res.Trace.WallSum(); sum > elapsed {
		t.Fatalf("trace ledger %v exceeds wall clock %v (trace %v)", sum, elapsed, res.Trace)
	}
	if res.Stats.NumDocsScanned != 400 || res.Stats.NumEntriesScanned == 0 {
		t.Fatalf("scan accounting wrong: %+v", res.Stats)
	}

	// Group-by memory accounting crosses the wire too.
	gres, err := c.Execute(context.Background(), "SELECT sum(clicks) FROM events GROUP BY country TOP 10")
	if err != nil {
		t.Fatal(err)
	}
	if gres.Stats.GroupStateBytes == 0 {
		t.Fatalf("group-by response missing state accounting: %+v", gres.Stats)
	}
	if gres.QueryID == res.QueryID {
		t.Fatal("query IDs must be per-query")
	}
}
