package cluster

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"pinot/internal/segment"
)

// produceDays pushes n realtime events per day for days [from, to] with
// clicks starting at clicksBase, returning the total rows and clicks sum.
func produceDays(t testing.TB, c *Cluster, topic string, from, to int64, n int, clicksBase int64) (rows int, sum int64) {
	t.Helper()
	th, err := c.Streams.Topic(topic)
	if err != nil {
		t.Fatal(err)
	}
	clicks := clicksBase
	for day := from; day <= to; day++ {
		for i := 0; i < n; i++ {
			msg, _ := json.Marshal(map[string]any{"country": "us", "memberId": 1, "clicks": clicks, "day": day})
			th.ProduceTo(0, nil, msg)
			rows++
			sum += clicks
			clicks++
		}
	}
	return rows, sum
}

// buildDayBlob builds an offline segment whose rows all share one day, so
// the segment's min and max time coincide (a single-bucket segment).
func buildDayBlob(t testing.TB, name string, n int, day, clicksBase int64) []byte {
	t.Helper()
	b, err := segment.NewBuilder("events", name, eventsSchema(t), segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Add(segment.Row{"us", int64(i % 20), clicksBase + int64(i), day}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func newHybridCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewLocal(Options{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if _, err := c.Streams.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	rtCfg := realtimeConfig(t, 1, 1000)
	rtCfg.Name = "events"
	if err := c.AddTable(rtCfg); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("events_REALTIME", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHybridOfflineEmptyFallsBackToBothSides: with no completed offline
// segments there is no time boundary, so the broker must query both sides
// unrewritten. The offline side contributes nothing and every realtime row
// is counted exactly once.
func TestHybridOfflineEmptyFallsBackToBothSides(t *testing.T) {
	c := newHybridCluster(t)
	rtRows, rtSum := produceDays(t, c, "events", 100, 104, 6, 1000)
	waitForCount(t, c, "SELECT count(*) FROM events", int64(rtRows), 5*time.Second)

	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result: %v", res.Exceptions)
	}
	if got := res.Rows[0][0].(int64); got != int64(rtRows) {
		t.Fatalf("count = %d, want %d", got, rtRows)
	}
	if got := res.Rows[0][1].(float64); got != float64(rtSum) {
		t.Fatalf("sum = %v, want %v", got, rtSum)
	}
}

// TestHybridBoundaryOnBucketEdge: every offline row sits on exactly the
// boundary day (segment min time == max time == boundary). Offline serves
// day < boundary, i.e. nothing; the realtime side owns the entire boundary
// bucket, so boundary rows are counted exactly once.
func TestHybridBoundaryOnBucketEdge(t *testing.T) {
	c := newHybridCluster(t)
	// Offline: 40 rows, all on day 100. Realtime re-ingests day 100 onward.
	if err := c.UploadSegment("events_OFFLINE", buildDayBlob(t, "events_edge", 40, 100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rtRows, rtSum := produceDays(t, c, "events", 100, 102, 5, 1000)
	waitForCount(t, c, "SELECT count(*) FROM events WHERE clicks >= 1000", int64(rtRows), 5*time.Second)

	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result: %v", res.Exceptions)
	}
	// The offline rows all live on the boundary day and are served by the
	// realtime side; counting any of them would double the boundary bucket.
	if got := res.Rows[0][0].(int64); got != int64(rtRows) {
		t.Fatalf("count = %d, want %d (boundary rows double counted?)", got, rtRows)
	}
	if got := res.Rows[0][1].(float64); got != float64(rtSum) {
		t.Fatalf("sum = %v, want %v", got, rtSum)
	}
}

// TestHybridRealtimeOnlyWindow: a filter entirely above the time boundary
// must be answered by the realtime side alone, and the rewrite's extra
// boundary predicates must not distort it.
func TestHybridRealtimeOnlyWindow(t *testing.T) {
	c := newHybridCluster(t)
	// Offline: days 100..104 (buildBlob spreads day = 100 + i%5), boundary 104.
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 50, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rtRows, _ := produceDays(t, c, "events", 104, 110, 4, 1000)
	waitForCount(t, c, "SELECT count(*) FROM events WHERE clicks >= 1000", int64(rtRows), 5*time.Second)

	// Window strictly above the boundary: days 105..110, 4 rows each.
	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events WHERE day >= 105")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result: %v", res.Exceptions)
	}
	wantRows, wantSum := 0, int64(0)
	clicks := int64(1000)
	for day := int64(104); day <= 110; day++ {
		for i := 0; i < 4; i++ {
			if day >= 105 {
				wantRows++
				wantSum += clicks
			}
			clicks++
		}
	}
	if got := res.Rows[0][0].(int64); got != int64(wantRows) {
		t.Fatalf("count = %d, want %d", got, wantRows)
	}
	if got := res.Rows[0][1].(float64); got != float64(wantSum) {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}
