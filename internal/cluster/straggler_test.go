package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pinot/internal/broker"
)

// TestLargeClusterRoutingMitigatesStragglers validates the motivation for
// the large-cluster routing strategy (paper 4.4: "the larger the cluster,
// the more likely it is that a single host ... will slow down query
// processing"; the strategy "minimizes the number of hosts contacted ...
// this minimizes the adverse impact of any given misbehaving host"). With
// one slow server in a six-server fleet, balanced routing touches it on
// every query; large-cluster routing only on the fraction of routing
// tables that include it.
func TestLargeClusterRoutingMitigatesStragglers(t *testing.T) {
	build := func(strategy broker.Strategy) *Cluster {
		c, err := NewLocal(Options{
			Servers: 6,
			BrokerTemplate: broker.Config{
				Strategy:      strategy,
				TargetServers: 2,
				RoutingTables: 8,
				Seed:          11,
				// Straggler exposure is measured by which servers the
				// repeated query actually reaches.
				DisableResultCache: true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Shutdown)
		if err := c.AddTable(offlineConfig(t, 3)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if err := c.UploadSegment("events_OFFLINE", buildBlob(t, fmt.Sprintf("events_%d", i), i*10, 10, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.WaitForOnline("events_OFFLINE", 12, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		// Server 1 becomes a straggler.
		c.Servers[0].InjectLatency(20 * time.Millisecond)
		return c
	}

	measure := func(c *Cluster) (slowQueries int, total time.Duration) {
		const n = 40
		for i := 0; i < n; i++ {
			start := time.Now()
			res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows[0][0].(int64) != 120 {
				t.Fatalf("count = %v", res.Rows[0][0])
			}
			elapsed := time.Since(start)
			total += elapsed
			if elapsed > 15*time.Millisecond {
				slowQueries++
			}
		}
		return slowQueries, total
	}

	balanced := build(broker.StrategyBalanced)
	large := build(broker.StrategyLargeCluster)
	balancedSlow, balancedTotal := measure(balanced)
	largeSlow, largeTotal := measure(large)

	// Balanced routing contacts every server, so every query pays the
	// straggler tax.
	if balancedSlow < 35 {
		t.Fatalf("balanced: only %d/40 queries hit the straggler", balancedSlow)
	}
	// Large-cluster routing only uses the straggler when the randomly
	// picked routing table includes it.
	if largeSlow >= balancedSlow {
		t.Fatalf("large-cluster routing did not reduce straggler impact: %d vs %d slow queries", largeSlow, balancedSlow)
	}
	if largeTotal >= balancedTotal {
		t.Fatalf("large-cluster total latency %v >= balanced %v", largeTotal, balancedTotal)
	}
	t.Logf("balanced: %d/40 slow (total %v); large-cluster: %d/40 slow (total %v)",
		balancedSlow, balancedTotal, largeSlow, largeTotal)
}
