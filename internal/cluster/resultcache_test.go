package cluster

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/metrics"
)

// maskedCanonical renders a response for cache-on/cache-off comparison: it
// strips Stats.ResultCacheHit — the single field allowed to differ between
// a cached and a cold response — and returns it alongside the canonical
// string of everything else.
func maskedCanonical(pqlText string, res *broker.Response) (string, bool) {
	hit := res.Stats.ResultCacheHit
	res.Stats.ResultCacheHit = false
	s := canonicalResponse(pqlText, res)
	res.Stats.ResultCacheHit = hit
	return s, hit
}

// TestResultCacheWarmIdentityAndStats is the mixed hot/cold regression for
// the broker result cache over an offline table: a warm run must be
// byte-identical to its cold run except for the hit flag, and the pruning
// accounting identity (pruned-by-* plus matched equals candidates) must
// hold on cache-hit paths exactly as it does on cold ones.
func TestResultCacheWarmIdentityAndStats(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: broker.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadTimeSlicedOffline(t, c, 1)

	aggQueries := []string{
		"SELECT count(*) FROM events",
		"SELECT sum(clicks), avg(clicks) FROM events WHERE country = 'us'",
		"SELECT count(*), sum(clicks) FROM events WHERE day BETWEEN 100 AND 204",
		"SELECT min(clicks), max(clicks) FROM events WHERE day >= 300",
		"SELECT count(*) FROM events GROUP BY country",
		"SELECT sum(clicks) FROM events WHERE day < 300 GROUP BY country TOP 2",
		"SELECT count(*) FROM events WHERE day BETWEEN 9000 AND 9001", // pruned to empty
	}
	for _, pqlText := range aggQueries {
		cold, err := c.Execute(context.Background(), pqlText)
		if err != nil {
			t.Fatalf("%q cold: %v", pqlText, err)
		}
		warm, err := c.Execute(context.Background(), pqlText)
		if err != nil {
			t.Fatalf("%q warm: %v", pqlText, err)
		}
		coldCanon, coldHit := maskedCanonical(pqlText, cold)
		warmCanon, warmHit := maskedCanonical(pqlText, warm)
		if coldHit {
			t.Errorf("%q: cold run marked as cache hit", pqlText)
		}
		// Queries pruned to empty at the broker never reach the scatter, so
		// there is nothing to cache — every other aggregation must hit warm.
		prunedEmpty := cold.Stats.SegmentsPrunedByBroker == cold.Stats.NumSegmentsQueried
		if !prunedEmpty && !warmHit {
			t.Errorf("%q: warm run missed the result cache", pqlText)
		}
		if coldCanon != warmCanon {
			t.Errorf("%q: warm response diverges from cold:\n  cold: %s\n  warm: %s", pqlText, coldCanon, warmCanon)
		}
		for label, res := range map[string]*broker.Response{"cold": cold, "warm": warm} {
			if got, want := pruneIdentity(res.Stats), res.Stats.NumSegmentsQueried; got != want {
				t.Errorf("%q %s: pruning identity broken: pruned+matched=%d, candidates=%d (%+v)",
					pqlText, label, got, want, res.Stats)
			}
		}
	}

	// Selections stay out of the cache: the row merge order across scatter
	// groups is not deterministic, so caching them would break the
	// byte-identical contract.
	sel := "SELECT memberId, clicks FROM events WHERE day BETWEEN 100 AND 104 ORDER BY clicks LIMIT 10"
	for i := 0; i < 2; i++ {
		res, err := c.Execute(context.Background(), sel)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ResultCacheHit {
			t.Fatalf("selection run %d served from result cache", i)
		}
	}

	reg := c.Metrics
	if hits := reg.Value("pinot_cache_hits_total", "result", "events"); hits == 0 {
		t.Fatal("result-cache hit counter never moved")
	}
}

// TestResultCacheSealInvalidationExactlyOnce drives the headline realtime
// scenario: cached entries cover only the sealed (immutable) portion, a hit
// still reflects rows arriving in consuming segments, and sealing a
// consuming segment mid-run invalidates each affected entry exactly once —
// after which the next query misses and returns the post-seal rows.
func TestResultCacheSealInvalidationExactlyOnce(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: broker.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// 100 rows per partition: two sealed segments each, plus an empty
	// consuming tail. Wait for the successor consuming segments as well —
	// their registration is one more external-view transition, and the
	// exactly-once accounting below needs a quiescent view to start from.
	produceEvents(t, c, "events", 0, 200)
	if err := c.WaitForOnline("rtevents_REALTIME", 4, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	settle := func(want int64) *broker.Response {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			res, err := c.Execute(context.Background(), "SELECT count(*) FROM rtevents")
			if err == nil && !res.Partial && res.Rows[0][0].(int64) == want {
				return res
			}
			if time.Now().After(deadline) {
				t.Fatalf("never saw %d realtime rows (last: %v, %v)", want, res, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	settle(200)

	// Populate distinct entries and verify each hits warm.
	corpus := []string{
		"SELECT count(*) FROM rtevents",
		"SELECT sum(clicks) FROM rtevents GROUP BY country",
		"SELECT max(clicks), min(clicks) FROM rtevents WHERE country = 'us'",
	}
	for _, pqlText := range corpus {
		if _, err := c.Execute(context.Background(), pqlText); err != nil {
			t.Fatalf("%q cold: %v", pqlText, err)
		}
		res, err := c.Execute(context.Background(), pqlText)
		if err != nil {
			t.Fatalf("%q warm: %v", pqlText, err)
		}
		if !res.Stats.ResultCacheHit {
			t.Fatalf("%q: warm run missed", pqlText)
		}
	}

	// Rows arriving in consuming segments (15 per partition, below the
	// 50-row seal threshold) must show up even when the immutable portion
	// is served from cache.
	produceEvents(t, c, "events", 200, 30)
	settle(230)
	res, err := c.Execute(context.Background(), "SELECT count(*) FROM rtevents")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ResultCacheHit || res.Rows[0][0].(int64) != 230 {
		t.Fatalf("post-ingest count: hit=%v rows=%v — consuming rows should ride on the cached immutable portion",
			res.Stats.ResultCacheHit, res.Rows)
	}

	reg := c.Metrics
	cache := c.Broker().ResultCache()
	entries := cache.Len()
	if entries == 0 {
		t.Fatal("no cached entries before the seal")
	}
	base := reg.Value("pinot_cache_invalidations_total", "result", "rtevents")

	// Seal mid-run: 60 more rows per partition crosses the 50-row
	// threshold, transitioning each consuming segment to ONLINE. No queries
	// run while the transitions drain, so the invalidation counters must
	// advance by exactly one per cached entry, no matter how many external
	// view updates the seal produces.
	produceEvents(t, c, "events", 230, 120)
	deadline := time.Now().Add(10 * time.Second)
	for reg.Value("pinot_cache_invalidations_total", "result", "rtevents")-base < int64(entries) {
		if time.Now().After(deadline) {
			t.Fatalf("invalidations advanced by %d, want %d",
				reg.Value("pinot_cache_invalidations_total", "result", "rtevents")-base, entries)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let any further EV transitions drain
	if d := reg.Value("pinot_cache_invalidations_total", "result", "rtevents") - base; d != int64(entries) {
		t.Fatalf("invalidations advanced by %d, want exactly %d (once per entry)", d, entries)
	}

	// The next query must miss (version vector moved) and see the new rows.
	first, err := c.Execute(context.Background(), "SELECT count(*) FROM rtevents")
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ResultCacheHit {
		t.Fatal("first post-seal query hit the cache despite the seal")
	}
	settle(350)
	if d := reg.Value("pinot_cache_invalidations_total", "result", "rtevents") - base; d != int64(entries) {
		t.Fatalf("post-seal queries moved the invalidation counter: %d, want %d", d, entries)
	}
}

// TestDifferentialResultCacheOnVsOff runs the full PR-4 corpus (~200
// queries) plus a Zipf-skewed repeat phase with interleaved ingestion
// through two brokers on one cluster — one with the result cache (the
// default), one with it disabled — and requires byte-identical responses,
// stats included, modulo the hit flag.
func TestDifferentialResultCacheOnVsOff(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: broker.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)
	if _, err := c.Streams.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	produceEvents(t, c, "events", 0, 200)
	// 200 rows over 2 partitions at a 50-row flush threshold seal 4 segments;
	// waiting for fewer lets the remaining seals commit mid-sweep, flipping a
	// replica from consuming to sealed between the on- and off-broker calls
	// and legitimately shifting the value-pruning counters.
	if err := c.WaitForOnline("rtevents_REALTIME", 4, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	offReg := metrics.NewRegistry()
	offBr := broker.New(broker.Config{
		Cluster:            c.Name,
		Instance:           "broker-nocache",
		Seed:               7,
		DisableResultCache: true,
		Metrics:            offReg,
	}, c.Store, c.Chaos)
	if err := offBr.Start(); err != nil {
		t.Fatal(err)
	}
	defer offBr.Stop()
	if offBr.ResultCache() != nil {
		t.Fatal("DisableResultCache left the cache tier constructed")
	}

	settle := func(br *broker.Broker, what string, want int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			res, err := br.Execute(context.Background(), "SELECT count(*) FROM rtevents", "")
			if err == nil && !res.Partial && res.Rows[0][0].(int64) == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s broker never saw %d realtime rows (last: %v, %v)", what, want, res, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	settle(c.Broker(), "cache-on", 200)
	settle(offBr, "cache-off", 200)

	queries := differentialQueries()
	if len(queries) < 200 {
		t.Fatalf("corpus has %d queries, want >= 200", len(queries))
	}
	mismatches := 0
	compare := func(pqlText string) {
		t.Helper()
		onRes, err := c.Broker().Execute(context.Background(), pqlText, "")
		if err != nil {
			t.Fatalf("cache-on broker failed %q: %v", pqlText, err)
		}
		offRes, err := offBr.Execute(context.Background(), pqlText, "")
		if err != nil {
			t.Fatalf("cache-off broker failed %q: %v", pqlText, err)
		}
		onCanon, _ := maskedCanonical(pqlText, onRes)
		offCanon, offHit := maskedCanonical(pqlText, offRes)
		if offHit {
			t.Fatalf("%q: cache-off broker reported a cache hit", pqlText)
		}
		if onCanon != offCanon {
			mismatches++
			t.Errorf("cache divergence on %q:\n  on:  %s\n  off: %s", pqlText, onCanon, offCanon)
			if mismatches >= 5 {
				t.Fatal("too many divergences, aborting")
			}
		}
	}
	// Cold sweep: the full corpus, populating the cache as it goes.
	for _, pqlText := range queries {
		compare(pqlText)
	}

	// Zipf-skewed repeats with interleaved ingestion: a few hot queries
	// dominate (the realistic dashboard shape the small-result admission
	// bias is for) while realtime rows keep arriving between rounds.
	zipf := rand.NewZipf(rand.New(rand.NewSource(7)), 1.2, 1, uint64(len(queries)-1))
	produced := 200
	for round := 0; round < 3; round++ {
		produceEvents(t, c, "events", produced, 20)
		produced += 20
		settle(c.Broker(), "cache-on", int64(produced))
		settle(offBr, "cache-off", int64(produced))
		for i := 0; i < 60; i++ {
			compare(queries[zipf.Uint64()])
		}
	}

	onHits := c.Metrics.Value("pinot_cache_hits_total", "result", "events") +
		c.Metrics.Value("pinot_cache_hits_total", "result", "rtevents")
	if onHits == 0 {
		t.Fatal("cache-on broker never hit its result cache across the Zipf phase")
	}
	if offHits := offReg.Total("pinot_cache_hits_total"); offHits != 0 {
		t.Fatalf("cache-off broker recorded %d result-cache hits", offHits)
	}
	t.Logf("result cache hits during differential: %d (entries: %d, bytes: %d)",
		onHits, c.Broker().ResultCache().Len(), c.Broker().ResultCache().Bytes())
}
