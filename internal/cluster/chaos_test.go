package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/chaos"
	"pinot/internal/helix"
)

// chaosBrokerConfig keeps retries fast and routing deterministic.
func chaosBrokerConfig() broker.Config {
	// Chaos scenarios repeat one query until a fault is exercised on the
	// scatter path; the result cache would answer the repeats at the
	// broker and starve the fault of traffic.
	return broker.Config{Seed: 5, RetryBackoff: time.Millisecond, DisableResultCache: true}
}

// loadOffline uploads four 100-row segments and waits until every segment
// has all its replicas ONLINE — recovery paths need the alternate replicas
// actually available before faults are injected.
func loadOffline(t *testing.T, c *Cluster, replicas int) {
	t.Helper()
	if err := c.AddTable(offlineConfig(t, replicas)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		blob := buildBlob(t, "events_"+string(rune('0'+i)), i*100, 100, 100)
		if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ev, err := c.ExternalView("events_OFFLINE")
		if err == nil {
			n := 0
			for seg := range ev.Partitions {
				if len(ev.InstancesFor(seg, helix.StateOnline)) >= replicas {
					n++
				}
			}
			if n >= 4 {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("events_OFFLINE never reached 4 segments with %d online replicas", replicas)
}

// victimFor runs one clean query and reports a server the broker's current
// routing table actually sends traffic to. The balanced routing table
// assigns each segment to a random replica, so which servers see traffic is
// not known a priori.
func victimFor(t *testing.T, c *Cluster, candidates ...string) string {
	t.Helper()
	// A zero Fault is a passthrough policy: it only turns on call counting.
	for _, s := range candidates {
		c.Chaos.SetFault(s, chaos.Fault{})
	}
	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	assertFullCount(t, res)
	for _, s := range candidates {
		if c.Chaos.Calls(s) > 0 {
			return s
		}
	}
	t.Fatal("no candidate server received traffic")
	return ""
}

// other returns the peer of a two-server cluster's instance.
func other(s string) string {
	if s == "server1" {
		return "server2"
	}
	return "server1"
}

// untilFaultExercised repeatedly targets a traffic-bearing server with the
// fault and runs `attempt` until the fault was actually injected at least
// once (the routing table can be rebuilt concurrently on external-view
// events, re-rolling which replica is primary). `attempt` must assert
// everything that holds whether or not the fault fired; untilFaultExercised
// returns the victim once it did fire.
func untilFaultExercised(t *testing.T, c *Cluster, f chaos.Fault, attempt func(t *testing.T, victim string)) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		victim := victimFor(t, c, "server1", "server2")
		c.Chaos.SetFault(victim, f) // resets the victim's counters
		attempt(t, victim)
		exercised := c.Chaos.Calls(victim) > 0
		c.Chaos.Clear(victim)
		c.Chaos.Clear(other(victim))
		if exercised {
			return victim
		}
		if time.Now().After(deadline) {
			t.Fatal("fault was never exercised")
		}
	}
}

func assertFullCount(t *testing.T, res *broker.Response) {
	t.Helper()
	if res.Partial {
		t.Fatalf("partial result: %v", res.Exceptions)
	}
	if got := res.Rows[0][0].(int64); got != 400 {
		t.Fatalf("count = %d, want 400", got)
	}
	if got := res.Rows[0][1].(float64); got != float64(399*400/2) {
		t.Fatalf("sum = %v, want %v", got, 399*400/2)
	}
	if res.ServersResponded != res.ServersQueried {
		t.Fatalf("queried/responded = %d/%d", res.ServersQueried, res.ServersResponded)
	}
}

// TestChaosReplicaDiesMidScatterRetryRecovers is the headline scenario: one
// replica fails every call mid-query, but with a second replica per segment
// the broker's retry path still assembles the correct full result.
func TestChaosReplicaDiesMidScatterRetryRecovers(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	var last *broker.Response
	victim := untilFaultExercised(t, c, chaos.Fault{FailAll: true}, func(t *testing.T, victim string) {
		res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
		if err != nil {
			t.Fatal(err)
		}
		// The dead replica never prevents the correct full result.
		assertFullCount(t, res)
		last = res
	})
	// The failure is visible in the exception detail, marked recovered.
	recovered := 0
	for _, e := range last.ServerExceptions {
		if e.Server == victim && e.Recovered {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatalf("no recovered exception for %s: %+v", victim, last.ServerExceptions)
	}
	// The recovery is also observable from the outside: the dead replica
	// forced at least one retry, and the masked failure shows up as a
	// recovered server exception in the broker's metrics.
	if got := c.Metrics.Value("pinot_broker_retries_total"); got == 0 {
		t.Fatal("pinot_broker_retries_total = 0 after a replica died mid-scatter")
	}
	if got := c.Metrics.Value("pinot_broker_server_exceptions_total", "true"); got == 0 {
		t.Fatal(`pinot_broker_server_exceptions_total{recovered="true"} = 0 after recovery`)
	}
}

// TestChaosAllReplicasFailExplicitPartial: when every replica of a segment
// group fails, the response must be explicitly partial with
// ServersResponded < ServersQueried, never silently wrong.
func TestChaosAllReplicasFailExplicitPartial(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	c.Chaos.SetFault("server1", chaos.Fault{FailAll: true})
	c.Chaos.SetFault("server2", chaos.Fault{FailAll: true})
	res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected explicitly partial result")
	}
	if res.ServersResponded >= res.ServersQueried {
		t.Fatalf("queried/responded = %d/%d, want responded < queried",
			res.ServersQueried, res.ServersResponded)
	}
	if len(res.Exceptions) == 0 {
		t.Fatal("expected client-visible exceptions")
	}
	found := false
	for _, e := range res.Exceptions {
		if strings.Contains(e, "chaos: injected fault") {
			found = true
		}
	}
	if !found {
		t.Fatalf("exceptions don't surface the injected fault: %v", res.Exceptions)
	}

	// The degraded response is counted against the table it served.
	if got := c.Metrics.Value("pinot_broker_partial_results_total", "events"); got == 0 {
		t.Fatal(`pinot_broker_partial_results_total{table="events"} = 0 after partial result`)
	}

	// Clearing the faults restores exact results.
	c.Chaos.Clear("server1")
	c.Chaos.Clear("server2")
	res, err = c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	assertFullCount(t, res)
}

// TestChaosHungServerRecoveredByDeadline: a server that stops answering
// (hangs until context cancellation) must not consume the whole query
// budget — the per-server deadline fires and the retry path recovers.
func TestChaosHungServerRecoveredByDeadline(t *testing.T) {
	cfg := chaosBrokerConfig()
	cfg.QueryTimeout = 10 * time.Second
	cfg.PerServerTimeout = 30 * time.Millisecond
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	var last *broker.Response
	victim := untilFaultExercised(t, c, chaos.Fault{Hang: true}, func(t *testing.T, victim string) {
		res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
		if err != nil {
			t.Fatal(err)
		}
		assertFullCount(t, res)
		last = res
	})
	recovered := false
	for _, e := range last.ServerExceptions {
		if e.Server == victim && e.Recovered {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("hang not recovered: %+v", last.ServerExceptions)
	}
}

// TestChaosHedgeMasksDelayedReplica: with retries disabled, only the hedged
// duplicate request can mask a replica delayed far past the hedge threshold.
func TestChaosHedgeMasksDelayedReplica(t *testing.T) {
	cfg := chaosBrokerConfig()
	cfg.MaxRetries = -1
	cfg.QueryTimeout = 5 * time.Second
	cfg.HedgeDelay = 10 * time.Millisecond
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	// Delayed far past the hedge threshold (and past the query timeout, so
	// a pass proves the hedge won, not the straggler).
	untilFaultExercised(t, c, chaos.Fault{Latency: time.Minute}, func(t *testing.T, victim string) {
		res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
		if err != nil {
			t.Fatal(err)
		}
		assertFullCount(t, res)
	})
	// With retries disabled, only a hedge can have masked the straggler —
	// the hedge counter is the proof the speculative duplicate fired.
	if got := c.Metrics.Value("pinot_broker_hedges_total"); got == 0 {
		t.Fatal("pinot_broker_hedges_total = 0 after a hedge masked a delayed replica")
	}
	if got := c.Metrics.Value("pinot_broker_retries_total"); got != 0 {
		t.Fatalf("pinot_broker_retries_total = %d with retries disabled, want 0", got)
	}
}

// TestChaosFailuresThenRecover: a count-based N-failures-then-recover
// schedule on a single-replica table produces exactly two explicitly partial
// responses and then exact results — fully deterministic, no timing.
func TestChaosFailuresThenRecover(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 1)

	c.Chaos.SetFault("server1", chaos.Fault{FailFirst: 2})
	for i := 0; i < 2; i++ {
		res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial || res.ServersResponded >= res.ServersQueried {
			t.Fatalf("query %d: want explicit partial, got %d/%d partial=%v",
				i, res.ServersResponded, res.ServersQueried, res.Partial)
		}
	}
	res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Rows[0][0].(int64) != 400 {
		t.Fatalf("post-recovery query: partial=%v rows=%v", res.Partial, res.Rows)
	}
	if calls, injected := c.Chaos.Calls("server1"), c.Chaos.Injected("server1"); calls != 3 || injected != 2 {
		t.Fatalf("calls/injected = %d/%d, want 3/2", calls, injected)
	}
}

// TestChaosCorruptResponseRejectedAndRetried: a mangled response payload
// must fail shape validation and fall to the retry path instead of
// poisoning the merged result.
func TestChaosCorruptResponseRejectedAndRetried(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadOffline(t, c, 2)

	var last *broker.Response
	victim := untilFaultExercised(t, c, chaos.Fault{Corrupt: true}, func(t *testing.T, victim string) {
		res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
		if err != nil {
			t.Fatal(err)
		}
		assertFullCount(t, res)
		last = res
	})
	recovered := false
	for _, e := range last.ServerExceptions {
		if e.Server == victim && e.Recovered {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("corruption not surfaced as recovered exception: %+v", last.ServerExceptions)
	}
	// A corrupt payload is rejected, retried, and recorded: the retry
	// counter and the recovered-exception counter both move.
	if got := c.Metrics.Value("pinot_broker_retries_total"); got == 0 {
		t.Fatal("pinot_broker_retries_total = 0 after a corrupt response forced a retry")
	}
	if got := c.Metrics.Value("pinot_broker_server_exceptions_total", "true"); got == 0 {
		t.Fatal(`pinot_broker_server_exceptions_total{recovered="true"} = 0 after corruption recovery`)
	}
}

// TestChaosControllerSessionExpiryDuringCompletion expires the lead
// controller's Zookeeper sessions while realtime segments are being
// committed: leadership moves (or is re-acquired over a fresh session) and
// the completion protocol still commits every segment exactly once.
func TestChaosControllerSessionExpiryDuringCompletion(t *testing.T) {
	c, err := NewLocal(Options{Controllers: 2, Servers: 2, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	produceEvents(t, c, "events", 0, 30)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 30, 5*time.Second)

	// Cross the flush threshold and immediately expire the leader's
	// sessions, so completion has to survive the reconnect/failover.
	leader, ok := c.Leader()
	if !ok {
		t.Fatal("no leader")
	}
	produceEvents(t, c, "events", 30, 170)
	leader.ExpireSession()

	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("rtevents_REALTIME", 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 200, 10*time.Second)
	res, err := c.Execute(context.Background(), "SELECT sum(clicks) FROM rtevents")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != float64(199*200/2) {
		t.Fatalf("sum = %v, want %v (duplicate or lost commits)", got, 199*200/2)
	}
}

// TestChaosPartitionStallPausesIngestion stalls one stream partition:
// consumers stop advancing on it without erroring, the other partition keeps
// ingesting, and resuming drains the backlog.
func TestChaosPartitionStallPausesIngestion(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	topic, err := c.Streams.CreateTopic("events", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 1, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	produceEvents(t, c, "events", 0, 30)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 30, 5*time.Second)

	if err := topic.StallPartition(0); err != nil {
		t.Fatal(err)
	}
	// Events 30..49 split evenly; only partition 1's ten become visible.
	produceEvents(t, c, "events", 30, 20)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 40, 5*time.Second)

	if err := topic.ResumePartition(0); err != nil {
		t.Fatal(err)
	}
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 50, 5*time.Second)
}
