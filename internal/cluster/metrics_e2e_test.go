package cluster

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/controller"
	"pinot/internal/httpapi"
	"pinot/internal/metrics"
	"pinot/internal/server"
	"pinot/internal/transport"
)

// TestMetricsEndToEnd boots a full cluster, runs a mixed query + ingest +
// minion workload, scrapes /metrics on the broker and controller HTTP
// handlers, and checks the exposition is (a) parseable by a real scraper and
// (b) internally consistent: per-table counters sum to the broker total, all
// seven subsystems are present, and the slow-query log is ordered.
func TestMetricsEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	// The transport's encode/decode instruments are process-global (the
	// HTTP data plane calls package functions); point them at this
	// cluster's registry for the test and restore the default after.
	transport.UseRegistry(reg)
	defer transport.UseRegistry(nil)

	c, err := NewLocal(Options{
		Servers:        2,
		Minions:        1,
		Metrics:        reg,
		BrokerTemplate: broker.Config{Seed: 5},
		ServerTemplate: server.Config{TenantTokens: 10, TenantRefill: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	// Offline workload: four segments, replicated, queried a few times.
	loadOffline(t, c, 2)
	for i := 0; i < 3; i++ {
		res, err := c.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events")
		if err != nil {
			t.Fatal(err)
		}
		assertFullCount(t, res)
	}
	if _, err := c.Broker().Execute(context.Background(), "SELECT count(*) FROM events WHERE country = 'us'", "gold"); err != nil {
		t.Fatal(err)
	}
	// Two bad requests: unparseable PQL and an unknown table. Neither may
	// count as a served query.
	if _, err := c.Execute(context.Background(), "SELECT FROM WHERE"); err == nil {
		t.Fatal("malformed PQL accepted")
	}
	if _, err := c.Execute(context.Background(), "SELECT count(*) FROM nosuchtable"); err == nil {
		t.Fatal("unknown table accepted")
	}

	// Realtime workload: two partitions flushing at 50 rows, so each
	// partition runs the completion protocol and commits a segment.
	if _, err := c.Streams.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 1, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	produceEvents(t, c, "events", 0, 120)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 120, 10*time.Second)
	if err := c.WaitForOnline("rtevents_REALTIME", 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	// Minion workload: purge one value from one offline segment.
	leader, ok := c.Leader()
	if !ok {
		t.Fatal("no leader")
	}
	err = leader.ScheduleTask(&controller.Task{
		ID:          "purge-1",
		Type:        controller.TaskPurge,
		Resource:    "events_OFFLINE",
		Segment:     "events_0",
		PurgeColumn: "memberId",
		PurgeValues: []string{"7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// memberId 7 appears 5 times in each of the 4 segments.
	waitForCount(t, c, "SELECT count(*) FROM events WHERE memberId = 7", 15, 10*time.Second)

	// Transport workload: the in-process cluster skips the gob data plane,
	// so pump one good and one hostile payload through it directly.
	payload, err := transport.EncodeResponse(&transport.QueryResponse{Exceptions: []string{"none"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := transport.DecodeResponse(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.DecodeResponse([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Fatal("junk payload decoded")
	}

	// ---- Scrape the broker endpoint and validate the exposition. ----
	bh := httpapi.NewBrokerHandler(c.Broker())
	rec := httptest.NewRecorder()
	bh.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	samples, err := metrics.ParseText(body)
	if err != nil {
		t.Fatalf("broker /metrics not parseable: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("broker /metrics empty")
	}

	// Every subsystem shows up in one scrape (the cluster shares one
	// registry, so the broker endpoint carries them all).
	for _, name := range []string{
		"pinot_broker_queries_total",
		"pinot_server_queries_total",
		"pinot_consumer_rows_consumed_total",
		"pinot_controller_completion_verdicts_total",
		"pinot_tenancy_queue_wait_us",
		"pinot_minion_tasks_total",
		"pinot_transport_encodes_total",
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("subsystem metric %s missing from scrape", name)
		}
	}

	// Invariant: the per-table query counters sum to the unlabeled broker
	// total — the same increment site feeds both.
	perTable := metrics.SumBy(samples, "pinot_broker_queries_total", "table")
	var tableSum float64
	for _, v := range perTable {
		tableSum += v
	}
	total := metrics.SumBy(samples, "pinot_broker_requests_total", "")[""]
	if tableSum != total || total == 0 {
		t.Fatalf("sum of per-table queries = %v, broker total = %v", tableSum, total)
	}
	if perTable["events"] < 4 || perTable["rtevents"] < 1 {
		t.Fatalf("per-table counters too low: %v", perTable)
	}
	if got := metrics.SumBy(samples, "pinot_broker_bad_requests_total", "")[""]; got < 2 {
		t.Fatalf("bad requests = %v, want >= 2", got)
	}

	// Workload side effects, read back through the scrape.
	if got := reg.Total("pinot_consumer_rows_consumed_total"); got < 120 {
		t.Fatalf("consumer rows = %d, want >= 120", got)
	}
	if got := reg.Value("pinot_consumer_flushes_total", "server1", "rtevents_REALTIME", "rows") +
		reg.Value("pinot_consumer_flushes_total", "server2", "rtevents_REALTIME", "rows"); got < 2 {
		t.Fatalf("row-threshold flushes = %d, want >= 2", got)
	}
	commits := metrics.SumBy(samples, "pinot_controller_segments_committed_total", "resource")
	if commits["rtevents_REALTIME"] < 2 {
		t.Fatalf("committed segments = %v, want >= 2 for rtevents_REALTIME", commits)
	}
	// The rewritten segment becomes queryable before the minion books the
	// task, so give the counter a moment to land.
	taskDeadline := time.Now().Add(5 * time.Second)
	for reg.Value("pinot_minion_tasks_total", "minion1", string(controller.TaskPurge), "ok") != 1 {
		if time.Now().After(taskDeadline) {
			t.Fatalf("minion ok purge tasks = %d, want 1",
				reg.Value("pinot_minion_tasks_total", "minion1", string(controller.TaskPurge), "ok"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Value("pinot_transport_decode_failures_total"); got < 1 {
		t.Fatal("decode failure not counted")
	}

	// ---- JSON variant. ----
	rec = httptest.NewRecorder()
	bh.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var jsonBody struct {
		Families []metrics.FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &jsonBody); err != nil {
		t.Fatalf("JSON /metrics: %v", err)
	}
	found := false
	for _, f := range jsonBody.Families {
		if f.Name == "pinot_broker_requests_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("JSON snapshot missing pinot_broker_requests_total")
	}

	// ---- Slow-query log. ----
	rec = httptest.NewRecorder()
	bh.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	var slow struct {
		Slowest []metrics.SlowQuery `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatalf("GET /debug/queries: %v", err)
	}
	if len(slow.Slowest) < 2 {
		t.Fatalf("slow log has %d entries, want >= 2", len(slow.Slowest))
	}
	for i := 1; i < len(slow.Slowest); i++ {
		if slow.Slowest[i].LatencyUs > slow.Slowest[i-1].LatencyUs {
			t.Fatalf("slow log not descending at %d: %d > %d",
				i, slow.Slowest[i].LatencyUs, slow.Slowest[i-1].LatencyUs)
		}
	}

	// ---- The controller endpoint scrapes the same registry. ----
	ch := httpapi.NewControllerHandler(leader)
	rec = httptest.NewRecorder()
	ch.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("controller GET /metrics = %d", rec.Code)
	}
	if _, err := metrics.ParseText(rec.Body.String()); err != nil {
		t.Fatalf("controller /metrics not parseable: %v", err)
	}
}
