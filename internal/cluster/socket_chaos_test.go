package cluster

import (
	"context"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/chaos"
	"pinot/internal/metrics"
	"pinot/internal/transport"
)

// socketEnv wires an extra broker whose scatter path runs over real TCP
// sockets, each server fronted by a chaos.Proxy. The base cluster keeps its
// in-memory brokers untouched; the TCP broker gets its own metrics registry
// so assertions see only socket-path traffic.
type socketEnv struct {
	c       *Cluster
	proxies map[string]*chaos.Proxy
	calls   *chaos.Registry
	met     *metrics.Registry
	br      *broker.Broker
}

// newSocketEnv builds a two-server cluster with 2x-replicated offline data,
// starts the framed-TCP data plane, fronts every server with a fault proxy
// and starts a broker that scatters through the proxies.
func newSocketEnv(t *testing.T, cfg broker.Config) *socketEnv {
	t.Helper()
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	loadOffline(t, c, 2)
	if _, err := c.StartTCPTransport(); err != nil {
		t.Fatal(err)
	}

	e := &socketEnv{c: c, proxies: map[string]*chaos.Proxy{}, met: metrics.NewRegistry()}
	for _, s := range []string{"server1", "server2"} {
		addr, ok := c.TCPAddr(s)
		if !ok {
			t.Fatalf("no TCP address for %s", s)
		}
		p, err := chaos.NewProxy(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		e.proxies[s] = p
	}

	pool := transport.NewPool()
	t.Cleanup(pool.Close)
	base := transport.NewTCPRegistry(func(instance string) (string, bool) {
		p, ok := e.proxies[instance]
		if !ok {
			return "", false
		}
		return p.Addr(), true
	}, pool)
	// The chaos registry is used fault-free here, purely for its per-server
	// call counting: it tells us which replica the routing table targets.
	e.calls = chaos.NewRegistry(base, 1)

	cfg.Cluster = c.Name
	cfg.Instance = "broker-tcp"
	cfg.Metrics = e.met
	e.br = broker.New(cfg, c.Store, e.calls)
	if err := e.br.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.br.Stop)
	return e
}

func (e *socketEnv) query(t *testing.T) *broker.Response {
	t.Helper()
	res, err := e.br.Execute(context.Background(), "SELECT count(*), sum(clicks) FROM events", "")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// victim runs one clean query over the sockets and reports a server the TCP
// broker's routing table actually sends traffic to.
func (e *socketEnv) victim(t *testing.T) string {
	t.Helper()
	for _, s := range []string{"server1", "server2"} {
		e.calls.SetFault(s, chaos.Fault{})
	}
	assertFullCount(t, e.query(t))
	for _, s := range []string{"server1", "server2"} {
		if e.calls.Calls(s) > 0 {
			return s
		}
	}
	t.Fatal("no server received socket traffic")
	return ""
}

// untilProxyFaultExercised mirrors untilFaultExercised at the socket layer:
// it installs f on a traffic-bearing server's proxy (optionally severing its
// pooled connections, the replica-death model) and runs attempt until the
// proxy actually fired the fault at least once.
func (e *socketEnv) untilProxyFaultExercised(t *testing.T, f chaos.ProxyFault, sever bool, attempt func(t *testing.T, victim string)) string {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		victim := e.victim(t)
		pv := e.proxies[victim]
		before := pv.Faulted()
		pv.SetFault(f)
		if sever {
			pv.SeverAll()
		}
		attempt(t, victim)
		exercised := pv.Faulted() > before
		pv.Clear()
		e.proxies[other(victim)].Clear()
		if exercised {
			return victim
		}
		if time.Now().After(deadline) {
			t.Fatal("socket fault was never exercised")
		}
	}
}

// TestSocketChaosReplicaDeathRetryRecovers ports the headline PR 1 scenario
// to real sockets: one replica's address goes dead (pooled connections
// reset, new dials rejected) mid-workload, yet the broker's retry path
// still assembles the correct full result from the surviving replica — and
// the recovery is visible in the retry and recovered-exception metrics.
func TestSocketChaosReplicaDeathRetryRecovers(t *testing.T) {
	e := newSocketEnv(t, chaosBrokerConfig())

	var last *broker.Response
	victim := e.untilProxyFaultExercised(t, chaos.ProxyFault{RejectConnections: true}, true, func(t *testing.T, victim string) {
		res := e.query(t)
		assertFullCount(t, res)
		last = res
	})
	recovered := 0
	for _, ex := range last.ServerExceptions {
		if ex.Server == victim && ex.Recovered {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatalf("no recovered exception for %s: %+v", victim, last.ServerExceptions)
	}
	if got := e.met.Value("pinot_broker_retries_total"); got == 0 {
		t.Fatal("pinot_broker_retries_total = 0 after a replica died at the socket layer")
	}
	if got := e.met.Value("pinot_broker_server_exceptions_total", "true"); got == 0 {
		t.Fatal(`pinot_broker_server_exceptions_total{recovered="true"} = 0 after recovery`)
	}
}

// TestSocketChaosHalfOpenHangRecoveredByDeadline: the proxy stops forwarding
// mid-frame without closing anything — a half-open connection that no error
// will ever surface. Only the per-server deadline gets the broker out, and
// the retry path must then recover the full result.
func TestSocketChaosHalfOpenHangRecoveredByDeadline(t *testing.T) {
	cfg := chaosBrokerConfig()
	cfg.QueryTimeout = 10 * time.Second
	cfg.PerServerTimeout = 100 * time.Millisecond
	e := newSocketEnv(t, cfg)

	var last *broker.Response
	victim := e.untilProxyFaultExercised(t, chaos.ProxyFault{HangAfterResponseBytes: 4}, false, func(t *testing.T, victim string) {
		res := e.query(t)
		assertFullCount(t, res)
		last = res
	})
	recovered := false
	for _, ex := range last.ServerExceptions {
		if ex.Server == victim && ex.Recovered {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("half-open hang not recovered: %+v", last.ServerExceptions)
	}
	if got := e.met.Value("pinot_broker_retries_total"); got == 0 {
		t.Fatal("pinot_broker_retries_total = 0 after half-open hang")
	}
}

// TestSocketChaosSlowDripStragglerHedged: a replica that drips its response
// a byte at a time is a straggler, not a failure — with retries disabled,
// only the hedged duplicate to the other replica can mask it.
func TestSocketChaosSlowDripStragglerHedged(t *testing.T) {
	cfg := chaosBrokerConfig()
	cfg.MaxRetries = -1
	cfg.QueryTimeout = 10 * time.Second
	cfg.HedgeDelay = 20 * time.Millisecond
	e := newSocketEnv(t, cfg)

	e.untilProxyFaultExercised(t, chaos.ProxyFault{DripDelay: 20 * time.Millisecond, DripChunk: 1}, false, func(t *testing.T, victim string) {
		res := e.query(t)
		assertFullCount(t, res)
	})
	if got := e.met.Value("pinot_broker_hedges_total"); got == 0 {
		t.Fatal("pinot_broker_hedges_total = 0 after slow-drip straggler")
	}
}

// TestSocketChaosMidFrameResetRecovers: the connection is hard-reset (RST)
// four bytes into the response — inside the first frame header. The client
// must treat the torn frame as a transport error, discard the connection
// and let the retry path recover the full result.
func TestSocketChaosMidFrameResetRecovers(t *testing.T) {
	e := newSocketEnv(t, chaosBrokerConfig())

	e.untilProxyFaultExercised(t, chaos.ProxyFault{ResetAfterResponseBytes: 4}, false, func(t *testing.T, victim string) {
		res := e.query(t)
		assertFullCount(t, res)
	})
	if got := e.met.Value("pinot_broker_retries_total"); got == 0 {
		t.Fatal("pinot_broker_retries_total = 0 after mid-frame reset")
	}
}

// TestSocketChaosCorruptFrameExplicitPartialNeverWrong: every response from
// every replica has one bit flipped in the frame header's version byte.
// Corruption must surface as a framing error and an explicitly partial
// result — never as silently wrong rows. Clearing the faults restores exact
// results (the poisoned connections were discarded).
func TestSocketChaosCorruptFrameExplicitPartialNeverWrong(t *testing.T) {
	e := newSocketEnv(t, chaosBrokerConfig())
	// Fresh-connection offsets are only guaranteed before any pooled traffic,
	// so corrupt both proxies before the first query: byte 2 (1-based) of
	// each connection's response stream is the version byte of the first
	// frame header, and flipping it fails parseHeader deterministically.
	for _, p := range e.proxies {
		p.SetFault(chaos.ProxyFault{CorruptResponseByte: 2})
	}
	res := e.query(t)
	if !res.Partial {
		t.Fatal("expected explicitly partial result under total corruption")
	}
	if res.ServersResponded >= res.ServersQueried {
		t.Fatalf("queried/responded = %d/%d, want responded < queried",
			res.ServersQueried, res.ServersResponded)
	}
	if len(res.Exceptions) == 0 {
		t.Fatal("expected client-visible exceptions for corrupted frames")
	}
	if got := e.met.Value("pinot_broker_partial_results_total", "events"); got == 0 {
		t.Fatal(`pinot_broker_partial_results_total{table="events"} = 0 after corruption`)
	}
	faulted := false
	for _, p := range e.proxies {
		if p.Faulted() > 0 {
			faulted = true
		}
	}
	if !faulted {
		t.Fatal("no proxy recorded a corruption fault")
	}

	// Clean connections, exact results.
	for _, p := range e.proxies {
		p.Clear()
	}
	assertFullCount(t, e.query(t))
}
