package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/chaos"
	"pinot/internal/query"
)

// loadTimeSlicedOffline uploads four 100-row segments with disjoint day
// ranges — segment i covers days [100i+100, 100i+104] — so broker-side
// time-range pruning has something to bite on.
func loadTimeSlicedOffline(t *testing.T, c *Cluster, replicas int) {
	t.Helper()
	if err := c.AddTable(offlineConfig(t, replicas)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		blob := buildBlob(t, fmt.Sprintf("events_%d", i), i*100, 100, int64(100*i+100))
		if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForOnline("events_OFFLINE", 4, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func pruneIdentity(s query.Stats) int {
	return s.SegmentsPrunedByBroker + s.SegmentsPrunedByServer + s.SegmentsPrunedByValue + s.SegmentsMatched
}

func TestBrokerTimeRangePruning(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: broker.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadTimeSlicedOffline(t, c, 1)

	// Selective query: only segment 0 (days 100-104) can hold matches.
	res, err := c.Execute(context.Background(),
		"SELECT count(*), sum(clicks) FROM events WHERE day BETWEEN 100 AND 104")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result: %v", res.Exceptions)
	}
	if got := res.Rows[0][0].(int64); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if res.Stats.SegmentsPrunedByBroker != 3 {
		t.Fatalf("broker pruned %d segments, want 3: %+v", res.Stats.SegmentsPrunedByBroker, res.Stats)
	}
	if res.Stats.SegmentsMatched != 1 {
		t.Fatalf("matched %d segments, want 1: %+v", res.Stats.SegmentsMatched, res.Stats)
	}
	if got := pruneIdentity(res.Stats); got != 4 {
		t.Fatalf("accounting identity: %d of 4 segments accounted: %+v", got, res.Stats)
	}
	// Pruned segments stay visible in the candidate accounting.
	if res.Stats.NumSegmentsQueried != 4 || res.Stats.TotalDocs != 400 {
		t.Fatalf("candidate accounting lost pruned segments: %+v", res.Stats)
	}

	// A filter overlapping no segment at all: an exact empty result, not a
	// routing error and not a partial.
	res, err = c.Execute(context.Background(),
		"SELECT count(*) FROM events WHERE day BETWEEN 9000 AND 9001")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("all-pruned result marked partial: %v", res.Exceptions)
	}
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	if res.Stats.SegmentsPrunedByBroker != 4 {
		t.Fatalf("broker pruned %d segments, want 4: %+v", res.Stats.SegmentsPrunedByBroker, res.Stats)
	}
}

// TestBrokerPruningDisabledMatchesEnabled: rows agree between a pruning
// broker+servers and a fully pruning-free stack, and the candidate counters
// stay equal.
func TestBrokerPruningDisabledMatchesEnabled(t *testing.T) {
	on, err := NewLocal(Options{Servers: 2, BrokerTemplate: broker.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Shutdown()
	loadTimeSlicedOffline(t, on, 1)

	offOpts := Options{Servers: 2, BrokerTemplate: broker.Config{Seed: 5, DisablePruning: true}}
	offOpts.ServerTemplate.PlanOptions.DisablePruning = true
	off, err := NewLocal(offOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Shutdown()
	loadTimeSlicedOffline(t, off, 1)

	queries := []string{
		"SELECT count(*), sum(clicks) FROM events WHERE day BETWEEN 100 AND 204",
		"SELECT count(*) FROM events WHERE day >= 300",
		"SELECT sum(clicks) FROM events WHERE country = 'us' AND day < 200",
		"SELECT count(*) FROM events WHERE day BETWEEN 150 AND 160",
		"SELECT memberId, clicks FROM events WHERE day BETWEEN 400 AND 404 ORDER BY clicks DESC LIMIT 10",
	}
	for _, q := range queries {
		ro, err := on.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rf, err := off.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if fmt.Sprint(ro.Rows) != fmt.Sprint(rf.Rows) {
			t.Fatalf("%s: rows diverge:\npruned:   %v\nunpruned: %v", q, ro.Rows, rf.Rows)
		}
		if ro.Stats.NumSegmentsQueried != rf.Stats.NumSegmentsQueried || ro.Stats.TotalDocs != rf.Stats.TotalDocs {
			t.Fatalf("%s: candidate accounting diverges:\npruned:   %+v\nunpruned: %+v", q, ro.Stats, rf.Stats)
		}
		if n := pruneIdentity(rf.Stats); n != 0 {
			t.Fatalf("%s: pruning counters moved while disabled: %+v", q, rf.Stats)
		}
		if n := pruneIdentity(ro.Stats); n != 4 {
			t.Fatalf("%s: accounting identity: %d of 4 accounted: %+v", q, n, ro.Stats)
		}
	}
}

// TestChaosPruningSurvivesReplicaFailure: with pruning live (the default), a
// replica failing every call must not break time-filtered queries — retries
// recover the full answer and the pruning accounting stays exact.
func TestChaosPruningSurvivesReplicaFailure(t *testing.T) {
	c, err := NewLocal(Options{Servers: 2, BrokerTemplate: chaosBrokerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	loadTimeSlicedOffline(t, c, 2)

	untilFaultExercised(t, c, chaos.Fault{FailAll: true}, func(t *testing.T, victim string) {
		res, err := c.Execute(context.Background(),
			"SELECT count(*), sum(clicks) FROM events WHERE day BETWEEN 100 AND 204")
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial {
			t.Fatalf("partial despite replica: %v", res.Exceptions)
		}
		// Segments 0 and 1 hold rows 0..199: count 200, sum 199*200/2.
		if got := res.Rows[0][0].(int64); got != 200 {
			t.Fatalf("count = %d, want 200", got)
		}
		if got := res.Rows[0][1].(float64); got != float64(199*200/2) {
			t.Fatalf("sum = %v, want %v", got, 199*200/2)
		}
		if got := pruneIdentity(res.Stats); got != 4 {
			t.Fatalf("accounting identity under faults: %d of 4 accounted: %+v", got, res.Stats)
		}
		if res.Stats.SegmentsPrunedByBroker != 2 {
			t.Fatalf("broker pruned %d, want 2: %+v", res.Stats.SegmentsPrunedByBroker, res.Stats)
		}
	})
}
