package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/segment"
	"pinot/internal/table"
	"pinot/internal/workload"
)

// buildImpressionsCluster stands up a 4-server cluster hosting the
// partitioned impression-discounting dataset.
func buildImpressionsCluster(t *testing.T, partitionAware bool) (*Cluster, *workload.Dataset) {
	t.Helper()
	const partitions = 4
	d := workload.Impressions(workload.SizeConfig{Segments: 8, RowsPerSegment: 1000, Seed: 2}, partitions)
	c, err := NewLocal(Options{
		Servers: 4,
		BrokerTemplate: broker.Config{
			Strategy:       broker.StrategyBalanced,
			PartitionAware: partitionAware,
			Seed:           3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	cfg := &table.Config{
		Name:            d.Name,
		Type:            table.Offline,
		Schema:          d.Schema,
		Replicas:        1,
		SortColumn:      d.SortColumn,
		PartitionColumn: d.PartitionColumn,
		NumPartitions:   partitions,
	}
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	for si := 0; si < d.NumSegments; si++ {
		b, err := segment.NewBuilder(d.Name, fmt.Sprintf("%s_%d", d.Name, si), d.Schema,
			segment.IndexConfig{SortColumn: d.SortColumn})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range d.Rows(si) {
			if err := b.Add(row); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := seg.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.UploadSegment(d.Name+"_OFFLINE", blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForOnline(d.Name+"_OFFLINE", d.NumSegments, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return c, d
}

func TestPartitionAwareRoutingPrunesServers(t *testing.T) {
	plain, d := buildImpressionsCluster(t, false)
	aware, _ := buildImpressionsCluster(t, true)

	queries := d.Queries(30, 77)
	var plainSegs, awareSegs, plainServers, awareServers int
	for _, q := range queries {
		rp, err := plain.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := aware.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		// Identical answers.
		if len(rp.Rows) != len(ra.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(rp.Rows), len(ra.Rows))
		}
		plainSegs += rp.Stats.NumSegmentsQueried
		awareSegs += ra.Stats.NumSegmentsQueried
		plainServers += rp.ServersQueried
		awareServers += ra.ServersQueried
	}
	// Partition-aware routing touches only the matching partition's
	// segments: 2 of 8 per query (8 segments over 4 partitions).
	if awareSegs*3 >= plainSegs {
		t.Fatalf("partition pruning ineffective: aware %d vs plain %d segments", awareSegs, plainSegs)
	}
	if awareServers >= plainServers {
		t.Fatalf("server fan-out not reduced: aware %d vs plain %d", awareServers, plainServers)
	}
}

func TestPartitionAwareCorrectAgainstFullScan(t *testing.T) {
	aware, d := buildImpressionsCluster(t, true)
	// Aggregate per member and cross-check against the generator.
	want := map[int64]int64{}
	for si := 0; si < d.NumSegments; si++ {
		for _, row := range d.Rows(si) {
			want[row[0].(int64)]++
		}
	}
	checked := 0
	for member, n := range want {
		res, err := aware.Execute(context.Background(),
			fmt.Sprintf("SELECT count(*) FROM impressions WHERE memberId = %d", member))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].(int64); got != n {
			t.Fatalf("member %d: count %d, want %d", member, got, n)
		}
		checked++
		if checked >= 25 {
			break
		}
	}
}
