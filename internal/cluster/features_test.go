package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/controller"
	"pinot/internal/helix"
	"pinot/internal/server"
)

// TestAutoIndexingFromQueryLog exercises the paper 5.2 feature: after
// enough filtered queries on a column, servers build an inverted index on
// it automatically.
func TestAutoIndexingFromQueryLog(t *testing.T) {
	c, err := NewLocal(Options{
		Servers:        1,
		ServerTemplate: server.Config{AutoIndexThreshold: 5},
		// Auto-indexing counts queries arriving at the server; the broker
		// result cache would absorb the repeats before they are observed.
		BrokerTemplate: broker.Config{DisableResultCache: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 500, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	q := "SELECT count(*) FROM events WHERE country = 'us'"
	var before, after int64
	for i := 0; i < 10; i++ {
		res, err := c.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			before = res.Stats.NumEntriesScanned
		}
		after = res.Stats.NumEntriesScanned
	}
	// Before the threshold the predicate scans the forward index (500
	// entry evaluations plus the matched docs' aggregation reads);
	// afterwards the inverted index answers it with far fewer touches.
	if before < 500 {
		t.Fatalf("initial scan entries = %d, want >= 500", before)
	}
	if after >= before {
		t.Fatalf("auto-index never kicked in: before %d, after %d", before, after)
	}
}

// TestServerTenantTagging verifies that tables constrained to a tenant tag
// only land on matching servers (paper 4.5 colocation).
func TestServerTenantTagging(t *testing.T) {
	c, err := NewLocal(Options{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	// Re-register the server with a tenant tag.
	sess := c.Store.NewSession()
	defer sess.Close()
	admin := helix.NewAdmin(sess, c.Name)
	if err := admin.RegisterInstance(helix.InstanceConfig{Instance: "server1", Tags: []string{"server", "tenantA"}}); err != nil {
		t.Fatal(err)
	}
	cfg := offlineConfig(t, 1)
	cfg.ServerTenant = "tenantA"
	if err := c.AddTable(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", buildBlob(t, "events_0", 0, 20, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ev, err := c.ExternalView("events_OFFLINE")
	if err != nil {
		t.Fatal(err)
	}
	for seg, replicas := range ev.Partitions {
		for inst := range replicas {
			if inst != "server1" {
				t.Fatalf("segment %s on untagged server %s", seg, inst)
			}
		}
	}
	// A table requiring a missing tenant is rejected at upload.
	cfgB := offlineConfig(t, 1)
	cfgB.Name = "orphan"
	cfgB.ServerTenant = "tenantB"
	leader, _ := c.Leader()
	if err := leader.AddTable(cfgB); err != nil {
		t.Fatal(err)
	}
	blob := func() []byte {
		b := buildBlob(t, "orphan_0", 0, 10, 100)
		return b
	}()
	// buildBlob builds for schema "events"; upload to orphan_OFFLINE still
	// validates server availability first.
	if err := leader.UploadSegment("orphan_OFFLINE", blob); err == nil {
		t.Fatal("upload to tenant with no servers accepted")
	}
}

// TestFig16ShapeAssertion locks in the Figure 16 relationship at correctness
// level: partition-aware routing answers identically while contacting fewer
// servers than balanced routing (the latency gap follows from that).
func TestFig16ShapeAssertion(t *testing.T) {
	plain, d := buildImpressionsCluster(t, false)
	aware, _ := buildImpressionsCluster(t, true)
	q := d.Queries(1, 5)[0]
	rp, err := plain.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := aware.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rp.Rows) != fmt.Sprint(ra.Rows) {
		t.Fatalf("answers differ:\n%v\n%v", rp.Rows, ra.Rows)
	}
}

// TestReplicaRepairAfterServerLoss exercises paper 3.4's stateless-node
// claim: when a server dies, the controller reassigns its segments to the
// remaining servers, which rebuild state from the object store (and the
// stream, for consuming segments).
func TestReplicaRepairAfterServerLoss(t *testing.T) {
	c, err := NewLocal(Options{
		Servers:            3,
		ControllerTemplate: controllerConfigFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(offlineConfig(t, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.UploadSegment("events_OFFLINE", buildBlob(t, fmt.Sprintf("events_%d", i), i*10, 10, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitForOnline("events_OFFLINE", 6, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Servers[2].Kill()
	// Every segment must regain 2 live ONLINE replicas on the survivors.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ev, err := c.ExternalView("events_OFFLINE")
		if err == nil && len(ev.Partitions) == 6 {
			healed := 0
			for seg := range ev.Partitions {
				if len(ev.InstancesFor(seg, helix.StateOnline)) == 2 {
					healed++
				}
			}
			if healed == 6 {
				break
			}
		}
		if time.Now().After(deadline) {
			ev, _ := c.ExternalView("events_OFFLINE")
			t.Fatalf("replication never repaired: %+v", ev.Partitions)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Queries stay exact after the repair.
	res, err := c.Execute(context.Background(), "SELECT count(*) FROM events")
	if err != nil || res.Partial || res.Rows[0][0].(int64) != 60 {
		t.Fatalf("post-repair query: %+v err=%v", res, err)
	}
}

// TestReplicaRepairRealtime verifies consuming segments move to a new
// server and resume consumption after a replica dies.
func TestReplicaRepairRealtime(t *testing.T) {
	c, err := NewLocal(Options{
		Servers:            2,
		ControllerTemplate: controllerConfigFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Streams.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(realtimeConfig(t, 1, 100000)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("rtevents_REALTIME", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	produceEvents(t, c, "events", 0, 50)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 50, 5*time.Second)
	// Find and kill the consuming server.
	ev, err := c.ExternalView("rtevents_REALTIME")
	if err != nil {
		t.Fatal(err)
	}
	consuming := ev.InstancesFor("rtevents__0__0", helix.StateConsuming)
	if len(consuming) != 1 {
		t.Fatalf("consuming replicas = %v", consuming)
	}
	for _, s := range c.Servers {
		if s.Instance() == consuming[0] {
			s.Kill()
		}
	}
	// The survivor takes over and replays the partition from the start
	// offset: all 50 events visible again.
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 50, 10*time.Second)
	produceEvents(t, c, "events", 50, 25)
	waitForCount(t, c, "SELECT count(*) FROM rtevents", 75, 10*time.Second)
}

func controllerConfigFast() controller.Config {
	return controller.Config{RetentionInterval: 25 * time.Millisecond}
}
