package pql

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError is a structured parse failure: a description plus the position
// (byte offset and 1-based line/column) and the offending token, so the
// broker can surface "where" alongside "what" in error payloads and the
// slow-query ring. Error() renders everything; callers that want the parts
// (httpapi, /debug/queries) unwrap with errors.As.
type ParseError struct {
	Msg    string // what went wrong, without position info
	Offset int    // byte offset into the query text
	Line   int    // 1-based line number
	Col    int    // 1-based column (byte) number within the line
	Token  string // offending token text; "" at end of input
}

func (e *ParseError) Error() string {
	near := "end of input"
	if e.Token != "" {
		near = strconv.Quote(e.Token)
	}
	return fmt.Sprintf("pql: %s at line %d, col %d (offset %d), near %s",
		e.Msg, e.Line, e.Col, e.Offset, near)
}

// newParseError builds a ParseError, deriving line/col from the byte offset.
func newParseError(input string, offset int, tok string, format string, args ...any) *ParseError {
	if offset > len(input) {
		offset = len(input)
	}
	prefix := input[:offset]
	line := strings.Count(prefix, "\n") + 1
	col := offset - strings.LastIndexByte(prefix, '\n')
	return &ParseError{
		Msg:    fmt.Sprintf(format, args...),
		Offset: offset,
		Line:   line,
		Col:    col,
		Token:  tok,
	}
}
