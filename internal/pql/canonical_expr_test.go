package pql

import (
	"fmt"
	"math/rand"
	"testing"
)

// randExpr generates a random expression AST of bounded depth over a small
// column/literal vocabulary. It is deliberately type-agnostic: the parser
// and canonicalizer accept any well-formed tree (typing happens at plan
// time), so the fixpoint property must hold for all of them.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			cols := []string{"a", "clicks", "day", "country"}
			return ColumnRef{Name: cols[r.Intn(len(cols))]}
		case 1:
			lits := []any{int64(0), int64(7), int64(-3), 2.5, int64(1000)}
			return Literal{Value: lits[r.Intn(len(lits))]}
		default:
			lits := []any{"us", "de", true, false}
			return Literal{Value: lits[r.Intn(len(lits))]}
		}
	}
	switch r.Intn(6) {
	case 0, 1:
		ops := []ArithOp{OpAdd, OpSub, OpMul, OpDiv}
		return Arith{Op: ops[r.Intn(len(ops))], L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	case 2:
		return Call{Name: "timeBucket", Args: []Expr{randExpr(r, depth-1), Literal{Value: int64(1 + r.Intn(100))}}}
	case 3:
		return Call{Name: "abs", Args: []Expr{randExpr(r, depth-1)}}
	case 4:
		fns := []string{"lower", "upper"}
		return Call{Name: fns[r.Intn(2)], Args: []Expr{randExpr(r, depth-1)}}
	default:
		n := 2 + r.Intn(2)
		args := make([]Expr, n)
		for i := range args {
			args[i] = randExpr(r, depth-1)
		}
		return Call{Name: "concat", Args: args}
	}
}

// TestCanonicalExprIdempotent: CanonicalExpr is a fixpoint — canonicalizing
// a canonical expression changes nothing (constant folding and commutative
// operand ordering both converge in one pass).
func TestCanonicalExprIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		e := randExpr(r, 1+r.Intn(3))
		once := CanonicalExpr(e)
		twice := CanonicalExpr(once)
		if once.String() != twice.String() {
			t.Fatalf("iter %d: CanonicalExpr not idempotent:\n  in:    %s\n  once:  %s\n  twice: %s",
				i, e.String(), once.String(), twice.String())
		}
	}
}

// TestCanonicalExprQueryFixpoint extends the query-level fixpoint property
// to expression-bearing queries: aggregation arguments, expression
// comparisons in WHERE, and GROUP BY expressions all canonicalize to text
// that re-parses to the same canonical text.
func TestCanonicalExprQueryFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		agg := randExpr(r, 1+r.Intn(2))
		if len(ExprColumns(agg)) == 0 {
			// The validator rejects aggregating a pure constant (it would
			// fold to a literal); anchor it on a column.
			agg = Arith{Op: OpAdd, L: ColumnRef{Name: "clicks"}, R: agg}
		}
		lhs := randExpr(r, 1+r.Intn(2))
		rhs := randExpr(r, r.Intn(2))
		grp := randExpr(r, 1+r.Intn(2))
		if len(ExprColumns(grp)) == 0 {
			grp = Call{Name: "concat", Args: []Expr{ColumnRef{Name: "country"}, grp, Literal{Value: "x"}}}
		}
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		text := fmt.Sprintf("SELECT sum(%s) FROM T WHERE %s %s %s GROUP BY %s TOP 5",
			agg.String(), lhs.String(), ops[r.Intn(len(ops))], rhs.String(), grp.String())
		q, err := Parse(text)
		if err != nil {
			// Some renderings are unparseable only if String() is broken;
			// surface that loudly.
			t.Fatalf("iter %d: generated query does not parse: %q: %v", i, text, err)
		}
		canon := q.CanonicalString()
		reparsed, err := Parse(canon)
		if err != nil {
			t.Fatalf("iter %d: canonical text does not re-parse: %q: %v", i, canon, err)
		}
		if again := reparsed.CanonicalString(); again != canon {
			t.Fatalf("iter %d: canonicalization not a fixpoint:\n  first:  %q\n  second: %q", i, canon, again)
		}
	}
}
