package pql

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) *Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseSimpleAggregation(t *testing.T) {
	q := mustParse(t, "SELECT count(*) FROM myTable")
	if q.Table != "myTable" {
		t.Fatalf("table = %q", q.Table)
	}
	if len(q.Select) != 1 || !q.Select[0].IsAgg || q.Select[0].Func != Count || q.Select[0].Column != "*" {
		t.Fatalf("select = %+v", q.Select)
	}
	if q.Filter != nil || q.HasGroupBy() {
		t.Fatal("unexpected filter/group-by")
	}
	if !q.IsAggregation() {
		t.Fatal("IsAggregation = false")
	}
}

func TestParsePaperQuery(t *testing.T) {
	// The query from paper Figure 7.
	q := mustParse(t, "SELECT campaignId, sum(click) FROM TableA WHERE accountId = 121011 AND 'day' >= 15949 GROUP BY campaignId")
	if !q.IsAggregation() || !q.HasGroupBy() {
		t.Fatalf("paper query misparsed: %+v", q)
	}
	// The canonical form without the redundant projection:
	q2 := mustParse(t, "SELECT sum(click) FROM TableA WHERE accountId = 121011 AND 'day' >= 15949 GROUP BY campaignId")
	and, ok := q2.Filter.(And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("filter = %#v", q2.Filter)
	}
	c0 := and.Children[0].(Comparison)
	if c0.Column != "accountId" || c0.Op != OpEq || c0.Value.(int64) != 121011 {
		t.Fatalf("child 0 = %#v", c0)
	}
	c1 := and.Children[1].(Comparison)
	if c1.Column != "day" || c1.Op != OpGte || c1.Value.(int64) != 15949 {
		t.Fatalf("child 1 = %#v", c1)
	}
	if !reflect.DeepEqual(q2.GroupBy, []string{"campaignId"}) {
		t.Fatalf("group by = %v", q2.GroupBy)
	}
}

func TestParseMixedSelectList(t *testing.T) {
	// A plain column alongside aggregations is allowed when grouped.
	if _, err := Parse("SELECT campaignId, sum(click) FROM T GROUP BY campaignId"); err != nil {
		t.Fatalf("grouped projection rejected: %v", err)
	}
	// ... but rejected when it is not a GROUP BY column.
	if _, err := Parse("SELECT other, sum(click) FROM T GROUP BY campaignId"); err == nil {
		t.Fatal("ungrouped projection accepted")
	}
}

func TestParsePredicates(t *testing.T) {
	q := mustParse(t, `SELECT sum(impressions) FROM T WHERE browser = 'firefox' OR browser = 'safari'`)
	or, ok := q.Filter.(Or)
	if !ok || len(or.Children) != 2 {
		t.Fatalf("filter = %#v", q.Filter)
	}
	q = mustParse(t, `SELECT count(*) FROM T WHERE country IN ('us', 'de') AND day BETWEEN 10 AND 20 AND NOT platform = 'ios'`)
	and := q.Filter.(And)
	if len(and.Children) != 3 {
		t.Fatalf("and children = %d", len(and.Children))
	}
	in := and.Children[0].(In)
	if in.Negated || len(in.Values) != 2 || in.Values[0] != "us" {
		t.Fatalf("in = %#v", in)
	}
	btw := and.Children[1].(Between)
	if btw.Lo.(int64) != 10 || btw.Hi.(int64) != 20 {
		t.Fatalf("between = %#v", btw)
	}
	not := and.Children[2].(Not)
	if not.Child.(Comparison).Value != "ios" {
		t.Fatalf("not = %#v", not)
	}
	q = mustParse(t, `SELECT count(*) FROM T WHERE x NOT IN (1, 2, 3)`)
	in = q.Filter.(In)
	if !in.Negated || len(in.Values) != 3 {
		t.Fatalf("not in = %#v", in)
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR.
	q := mustParse(t, "SELECT count(*) FROM T WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := q.Filter.(Or)
	if !ok || len(or.Children) != 2 {
		t.Fatalf("filter = %#v", q.Filter)
	}
	if _, ok := or.Children[1].(And); !ok {
		t.Fatalf("right side should be AND: %#v", or.Children[1])
	}
	// Parentheses override.
	q = mustParse(t, "SELECT count(*) FROM T WHERE (a = 1 OR b = 2) AND c = 3")
	and, ok := q.Filter.(And)
	if !ok {
		t.Fatalf("filter = %#v", q.Filter)
	}
	if _, ok := and.Children[0].(Or); !ok {
		t.Fatalf("left side should be OR: %#v", and.Children[0])
	}
}

func TestParseSelection(t *testing.T) {
	q := mustParse(t, "SELECT itemId, score FROM feed WHERE memberId = 7 ORDER BY score DESC, itemId LIMIT 20, 50")
	if q.IsAggregation() {
		t.Fatal("selection marked aggregation")
	}
	if len(q.Select) != 2 || q.Select[0].Column != "itemId" {
		t.Fatalf("select = %+v", q.Select)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Descending || q.OrderBy[1].Descending {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.Offset != 20 || q.Limit != 50 {
		t.Fatalf("limit = %d,%d", q.Offset, q.Limit)
	}
	q = mustParse(t, "SELECT * FROM feed LIMIT 5")
	if q.Select[0].Column != "*" || q.Limit != 5 || q.Offset != 0 {
		t.Fatalf("star select = %+v limit=%d", q.Select, q.Limit)
	}
}

func TestParseTop(t *testing.T) {
	q := mustParse(t, "SELECT sum(views) FROM T GROUP BY country TOP 25")
	if q.Top != 25 {
		t.Fatalf("top = %d", q.Top)
	}
	q = mustParse(t, "SELECT sum(views) FROM T GROUP BY country")
	if q.Top != DefaultTop {
		t.Fatalf("default top = %d", q.Top)
	}
}

func TestParseLiteralTypes(t *testing.T) {
	q := mustParse(t, "SELECT count(*) FROM T WHERE a = 1.5 AND b = -3 AND c = 'x''y' AND d = true AND e = 2e3")
	and := q.Filter.(And)
	if and.Children[0].(Comparison).Value.(float64) != 1.5 {
		t.Fatal("float literal")
	}
	if and.Children[1].(Comparison).Value.(int64) != -3 {
		t.Fatal("negative int literal")
	}
	if and.Children[2].(Comparison).Value.(string) != "x'y" {
		t.Fatalf("escaped string literal: %#v", and.Children[2])
	}
	if and.Children[3].(Comparison).Value.(bool) != true {
		t.Fatal("bool literal")
	}
	if and.Children[4].(Comparison).Value.(float64) != 2000 {
		t.Fatal("exponent literal")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT count(* FROM T",
		"SELECT count(*) FROM",
		"SELECT count(*) FROM T WHERE",
		"SELECT count(*) FROM T WHERE a",
		"SELECT count(*) FROM T WHERE a =",
		"SELECT count(*) FROM T WHERE a = 'unterminated",
		"SELECT count(*) FROM T WHERE a IN ()",
		"SELECT count(*) FROM T WHERE a BETWEEN 1",
		"SELECT count(*) FROM T GROUP BY",
		"SELECT count(*) FROM T trailing garbage",
		"SELECT sum(*) FROM T",
		"SELECT a FROM T GROUP BY a",
		"SELECT a, count(*) FROM T",
		"SELECT count(*) FROM T ORDER BY x",
		"SELECT count(*) FROM T WHERE a ! b",
		"SELECT count(*) FROM T TOP -5",
		"SELECT *, a FROM T",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select SUM(x) from T where a = 1 group by b top 3")
	if q.Select[0].Func != Sum || q.Top != 3 || len(q.GroupBy) != 1 {
		t.Fatalf("case-insensitive parse failed: %+v", q)
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT count(*) FROM T",
		"SELECT sum(click) FROM T WHERE accountId = 121011 AND day >= 15949 GROUP BY campaignId",
		"SELECT sum(impressions) FROM T WHERE (browser = 'firefox' OR browser = 'safari') GROUP BY country TOP 5",
		"SELECT itemId FROM feed WHERE memberId = 7 ORDER BY itemId DESC LIMIT 3, 9",
		"SELECT distinctcount(viewerId) FROM wvmp WHERE vieweeId = 42 AND region IN ('us', 'eu')",
		"SELECT count(*) FROM T WHERE NOT (a = 1 AND b BETWEEN 2 AND 3)",
	}
	for _, s := range queries {
		q1 := mustParse(t, s)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip unstable:\n  in:  %s\n  1st: %s\n  2nd: %s", s, q1.String(), q2.String())
		}
	}
}

func TestWithExtraFilter(t *testing.T) {
	q := mustParse(t, "SELECT count(*) FROM T WHERE a = 1")
	extra := Comparison{Column: "day", Op: OpLt, Value: int64(100)}
	q2 := q.WithExtraFilter(extra)
	and, ok := q2.Filter.(And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("rewritten filter = %#v", q2.Filter)
	}
	// Original untouched.
	if _, ok := q.Filter.(Comparison); !ok {
		t.Fatal("original query mutated")
	}
	// No prior filter.
	q3 := mustParse(t, "SELECT count(*) FROM T")
	q4 := q3.WithExtraFilter(extra)
	if c, ok := q4.Filter.(Comparison); !ok || c.Column != "day" {
		t.Fatalf("filter = %#v", q4.Filter)
	}
}

func TestPredicateColumns(t *testing.T) {
	q := mustParse(t, "SELECT count(*) FROM T WHERE a = 1 AND (b IN (1,2) OR NOT c BETWEEN 3 AND 4) AND a = 2")
	cols := PredicateColumns(q.Filter)
	if !reflect.DeepEqual(cols, []string{"a", "b", "c"}) {
		t.Fatalf("columns = %v", cols)
	}
	if got := PredicateColumns(nil); got != nil {
		t.Fatalf("nil predicate columns = %v", got)
	}
}

func TestQuotedColumnName(t *testing.T) {
	q := mustParse(t, "SELECT count(*) FROM T WHERE 'day' >= 15949")
	c := q.Filter.(Comparison)
	if c.Column != "day" {
		t.Fatalf("quoted column = %q", c.Column)
	}
}

func TestStringEscaping(t *testing.T) {
	q := mustParse(t, `SELECT count(*) FROM T WHERE a = 'it''s'`)
	s := q.Filter.String()
	if !strings.Contains(s, "'it''s'") {
		t.Fatalf("escaped render = %s", s)
	}
	q2 := mustParse(t, "SELECT count(*) FROM T WHERE "+s)
	if q2.Filter.(Comparison).Value != "it's" {
		t.Fatalf("re-parse of escaped literal = %#v", q2.Filter)
	}
}
