package pql

import (
	"errors"
	"testing"
)

// TestParseErrorMessages pins the exact rendered error — message, position
// and offending token — for malformed queries. These strings are part of the
// broker's client-facing contract (httpapi error payloads, /debug/queries),
// so a change here is a change clients see.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{
			"SELECT count(*) FROM",
			`pql: expected table name, got end of input at line 1, col 21 (offset 20), near end of input`,
		},
		{
			"SELECT sum(clicks +) FROM T",
			`pql: expected expression, got ")" at line 1, col 20 (offset 19), near ")"`,
		},
		{
			"SELECT count(*) FROM T WHERE upper(a, b) = 'X'",
			`pql: upper() takes 1 argument(s), got 2 at line 1, col 30 (offset 29), near "upper"`,
		},
		{
			"SELECT count(*) FROM T\nGROUP BY timeBucket(day 7)",
			`pql: expected ), got "7" at line 2, col 25 (offset 47), near "7"`,
		},
		{
			"SELECT count(*) FROM T WHERE a = 'unterminated",
			`pql: unterminated string at line 1, col 34 (offset 33), near "'"`,
		},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", c.in)
			continue
		}
		if got := err.Error(); got != c.want {
			t.Errorf("Parse(%q)\n  got:  %s\n  want: %s", c.in, got, c.want)
		}
	}
}

// TestParseErrorStructure checks the unwrapped fields clients consume via
// errors.As: multi-line position arithmetic and the offending token.
func TestParseErrorStructure(t *testing.T) {
	_, err := Parse("SELECT count(*) FROM T\nGROUP BY timeBucket(day 7)")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 2 || pe.Col != 25 || pe.Offset != 47 || pe.Token != "7" {
		t.Fatalf("position = line %d col %d offset %d token %q", pe.Line, pe.Col, pe.Offset, pe.Token)
	}
	if pe.Msg != `expected ), got "7"` {
		t.Fatalf("msg = %q", pe.Msg)
	}

	// End-of-input failures carry an empty token.
	_, err = Parse("SELECT count(*) FROM")
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Token != "" || pe.Offset != 20 {
		t.Fatalf("eof failure = %+v", pe)
	}

	// ParseExpr failures are positioned the same way.
	_, err = ParseExpr("clicks + ")
	if !errors.As(err, &pe) {
		t.Fatalf("ParseExpr error is %T, want *ParseError", err)
	}
	if pe.Offset != 9 {
		t.Fatalf("ParseExpr offset = %d", pe.Offset)
	}
}
