package pql

import "testing"

func TestExprDeterministic(t *testing.T) {
	col := ColumnRef{Name: "c"}
	cases := []struct {
		name string
		e    Expr
		want bool
	}{
		{"literal", Literal{Value: int64(3)}, true},
		{"column", col, true},
		{"arith", Arith{Op: OpAdd, L: col, R: Literal{Value: int64(1)}}, true},
		{"known builtin", Call{Name: "lower", Args: []Expr{col}}, true},
		{"nested builtin", Call{Name: "concat", Args: []Expr{Call{Name: "upper", Args: []Expr{col}}, Literal{Value: "x"}}}, true},
		// Unknown functions are excluded by default: a future now()/rand()
		// must not be silently memoized per dictionary entry.
		{"unknown call", Call{Name: "now", Args: nil}, false},
		{"unknown nested", Arith{Op: OpMul, L: col, R: Call{Name: "rand", Args: nil}}, false},
		{"nil", nil, false},
	}
	for _, c := range cases {
		if got := ExprDeterministic(c.e); got != c.want {
			t.Errorf("%s: ExprDeterministic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPredicateHasExprCompare(t *testing.T) {
	plain := Comparison{Column: "c", Op: OpEq, Value: "x"}
	ec := ExprCompare{LHS: ColumnRef{Name: "c"}, Op: OpEq, RHS: Literal{Value: int64(1)}}
	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"plain leaf", plain, false},
		{"expr leaf", ec, true},
		{"and without", And{Children: []Predicate{plain, plain}}, false},
		{"and with", And{Children: []Predicate{plain, ec}}, true},
		{"or nested", Or{Children: []Predicate{plain, Not{Child: ec}}}, true},
		{"not plain", Not{Child: plain}, false},
		{"nil", nil, false},
	}
	for _, c := range cases {
		if got := PredicateHasExprCompare(c.p); got != c.want {
			t.Errorf("%s: PredicateHasExprCompare = %v, want %v", c.name, got, c.want)
		}
	}
}
