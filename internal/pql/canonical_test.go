package pql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestCanonicalCommutedPredicates is the satellite's headline case: commuted
// AND chains, shuffled IN lists, whitespace and keyword-case variants must
// all share one canonical rendering.
func TestCanonicalCommutedPredicates(t *testing.T) {
	groups := [][]string{
		{
			"SELECT count(*) FROM T WHERE a='x' AND b='y'",
			"SELECT count(*) FROM T WHERE b='y' AND a='x'",
			"select COUNT(*) from T where  a = 'x'  AND b = 'y'",
		},
		{
			"SELECT sum(clicks) FROM events WHERE country IN ('us','de','fr') AND day > 5",
			"SELECT sum(clicks) FROM events WHERE day > 5 AND country IN ('fr','us','de')",
			"select SUM(clicks) from events WHERE (day > 5) and country in ('de', 'fr', 'us')",
		},
		{
			"SELECT count(*) FROM T WHERE a = 1 AND (b = 2 AND c = 3)",
			"SELECT count(*) FROM T WHERE (a = 1 AND b = 2) AND c = 3",
			"SELECT count(*) FROM T WHERE c = 3 AND b = 2 AND a = 1",
		},
		{
			"SELECT count(*) FROM T WHERE a = 1 OR b = 2 OR c = 3",
			"SELECT count(*) FROM T WHERE c = 3 OR (b = 2 OR a = 1)",
		},
	}
	for gi, group := range groups {
		want := ""
		for qi, text := range group {
			q, err := Parse(text)
			if err != nil {
				t.Fatalf("group %d query %d: %v", gi, qi, err)
			}
			got := q.CanonicalString()
			if qi == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("group %d: canonical keys diverge:\n  %q -> %q\n  %q -> %q",
					gi, group[0], want, text, got)
			}
		}
	}
}

// TestCanonicalDistinguishesSemantics guards against over-normalization:
// queries that mean different things must keep different keys.
func TestCanonicalDistinguishesSemantics(t *testing.T) {
	pairs := [][2]string{
		{"SELECT count(*) FROM T WHERE a = 1 AND b = 2", "SELECT count(*) FROM T WHERE a = 1 OR b = 2"},
		{"SELECT count(*) FROM T WHERE a IN (1, 2)", "SELECT count(*) FROM T WHERE a NOT IN (1, 2)"},
		{"SELECT count(*) FROM T WHERE a = 1", "SELECT count(*) FROM T WHERE NOT a = 1"},
		{"SELECT count(*) FROM T WHERE a BETWEEN 1 AND 2", "SELECT count(*) FROM T WHERE a BETWEEN 2 AND 1"},
		{"SELECT count(*) FROM T GROUP BY a TOP 3", "SELECT count(*) FROM T GROUP BY a TOP 4"},
		{"SELECT a, b FROM T LIMIT 5", "SELECT b, a FROM T LIMIT 5"},
	}
	for _, pair := range pairs {
		q1, err := Parse(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		q2, err := Parse(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if q1.CanonicalString() == q2.CanonicalString() {
			t.Errorf("distinct queries share a key: %q vs %q -> %q", pair[0], pair[1], q1.CanonicalString())
		}
	}
}

// randPredicate generates a random predicate tree of bounded depth over a
// small column/literal vocabulary.
func randPredicate(r *rand.Rand, depth int) Predicate {
	cols := []string{"a", "b", "country", "clicks", "day"}
	lits := []any{int64(1), int64(42), "us", "de", 3.5, true}
	ops := []CompareOp{OpEq, OpNeq, OpLt, OpLte, OpGt, OpGte}
	leaf := func() Predicate {
		switch r.Intn(3) {
		case 0:
			return Comparison{Column: cols[r.Intn(len(cols))], Op: ops[r.Intn(len(ops))], Value: lits[r.Intn(len(lits))]}
		case 1:
			n := 1 + r.Intn(3)
			vals := make([]any, n)
			for i := range vals {
				vals[i] = lits[r.Intn(len(lits))]
			}
			return In{Column: cols[r.Intn(len(cols))], Values: vals, Negated: r.Intn(2) == 0}
		default:
			return Between{Column: cols[r.Intn(len(cols))], Lo: int64(r.Intn(10)), Hi: int64(10 + r.Intn(10))}
		}
	}
	if depth <= 0 {
		return leaf()
	}
	switch r.Intn(4) {
	case 0:
		n := 2 + r.Intn(3)
		children := make([]Predicate, n)
		for i := range children {
			children[i] = randPredicate(r, depth-1)
		}
		return And{Children: children}
	case 1:
		n := 2 + r.Intn(3)
		children := make([]Predicate, n)
		for i := range children {
			children[i] = randPredicate(r, depth-1)
		}
		return Or{Children: children}
	case 2:
		return Not{Child: randPredicate(r, depth-1)}
	default:
		return leaf()
	}
}

func randQuery(r *rand.Rand) *Query {
	q := &Query{Table: "T", Top: DefaultTop, Limit: DefaultLimit}
	if r.Intn(2) == 0 {
		q.Select = []Expression{{IsAgg: true, Func: Count, Column: "*"}}
		if r.Intn(2) == 0 {
			q.Select = append(q.Select, Expression{IsAgg: true, Func: Sum, Column: "clicks"})
		}
		if r.Intn(2) == 0 {
			q.GroupBy = []string{"country"}
			q.Top = 1 + r.Intn(10)
		}
	} else {
		q.Select = []Expression{{Column: "a"}, {Column: "clicks"}}
		q.OrderBy = []OrderSpec{{Column: "clicks", Descending: r.Intn(2) == 0}}
		q.Limit = 1 + r.Intn(30)
		q.Offset = r.Intn(3)
	}
	if r.Intn(4) > 0 {
		q.Filter = randPredicate(r, 1+r.Intn(2))
	}
	return q
}

// TestCanonicalFixpointProperty is the property test demanded by the issue:
// for random queries, parse(CanonicalString) followed by another
// canonicalization must reproduce the same text — canonicalization is a
// fixpoint under parse→canonicalize→render.
func TestCanonicalFixpointProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		q := randQuery(r)
		canon := q.CanonicalString()
		reparsed, err := Parse(canon)
		if err != nil {
			t.Fatalf("iter %d: canonical text does not re-parse: %q: %v", i, canon, err)
		}
		if again := reparsed.CanonicalString(); again != canon {
			t.Fatalf("iter %d: canonicalization is not a fixpoint:\n  first:  %q\n  second: %q", i, canon, again)
		}
		// Canonicalizing twice in-memory is also stable.
		if twice := q.Canonical().CanonicalString(); twice != canon {
			t.Fatalf("iter %d: double canonicalization diverges:\n  once:  %q\n  twice: %q", i, canon, twice)
		}
	}
}

// TestCanonicalPreservesSemantics spot-checks that canonicalization does not
// change what a predicate matches, by evaluating original and canonical
// trees over a small synthetic row set.
func TestCanonicalPreservesSemantics(t *testing.T) {
	type row map[string]any
	rows := []row{}
	for _, a := range []any{int64(1), int64(42), "us"} {
		for _, clicks := range []int64{0, 5, 15} {
			rows = append(rows, row{"a": a, "b": a, "country": "us", "clicks": clicks, "day": clicks})
		}
	}
	var eval func(p Predicate, rw row) bool
	cmp := func(v any, op CompareOp, lit any) bool {
		vs, ls := fmt.Sprint(v), fmt.Sprint(lit)
		switch op {
		case OpEq:
			return vs == ls
		case OpNeq:
			return vs != ls
		}
		vi, vok := v.(int64)
		li, lok := lit.(int64)
		if !vok || !lok {
			return false
		}
		switch op {
		case OpLt:
			return vi < li
		case OpLte:
			return vi <= li
		case OpGt:
			return vi > li
		case OpGte:
			return vi >= li
		}
		return false
	}
	eval = func(p Predicate, rw row) bool {
		switch n := p.(type) {
		case Comparison:
			return cmp(rw[n.Column], n.Op, n.Value)
		case In:
			found := false
			for _, v := range n.Values {
				if fmt.Sprint(rw[n.Column]) == fmt.Sprint(v) {
					found = true
					break
				}
			}
			return found != n.Negated
		case Between:
			vi, ok := rw[n.Column].(int64)
			lo, lok := n.Lo.(int64)
			hi, hok := n.Hi.(int64)
			return ok && lok && hok && vi >= lo && vi <= hi
		case And:
			for _, c := range n.Children {
				if !eval(c, rw) {
					return false
				}
			}
			return true
		case Or:
			for _, c := range n.Children {
				if eval(c, rw) {
					return true
				}
			}
			return false
		case Not:
			return !eval(n.Child, rw)
		}
		return false
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		p := randPredicate(r, 2)
		cp := CanonicalPredicate(p)
		for ri, rw := range rows {
			if got, want := eval(cp, rw), eval(p, rw); got != want {
				t.Fatalf("iter %d row %d: canonicalization changed semantics of %s -> %s", i, ri, p, cp)
			}
		}
	}
}

// TestCanonicalStringNormalizesSurface verifies keyword case and whitespace
// wash out through rendering.
func TestCanonicalStringNormalizesSurface(t *testing.T) {
	a, err := Parse("select   count(*)   from events  where country = 'us'")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("SELECT COUNT(*) FROM events WHERE country = 'us'")
	if err != nil {
		t.Fatal(err)
	}
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatalf("surface variants diverge: %q vs %q", a.CanonicalString(), b.CanonicalString())
	}
	if strings.Contains(a.CanonicalString(), "  ") {
		t.Fatalf("canonical text has unnormalized whitespace: %q", a.CanonicalString())
	}
}
