package pql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // = <> != < <= > >=
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokPlus
	tokMinus
	tokSlash
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes PQL text. Keywords stay tokIdent; the parser matches them
// case-insensitively so column names that collide with keywords in other
// positions still work.
type lexer struct {
	input  string
	pos    int
	tokens []token
}

func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '+':
			l.emit(tokPlus, "+")
		case c == '/':
			l.emit(tokSlash, "/")
		case c == '=':
			l.emit(tokOp, "=")
		case c == '<':
			switch {
			case l.peek(1) == '=':
				l.emitN(tokOp, "<=", 2)
			case l.peek(1) == '>':
				l.emitN(tokOp, "<>", 2)
			default:
				l.emit(tokOp, "<")
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emitN(tokOp, ">=", 2)
			} else {
				l.emit(tokOp, ">")
			}
		case c == '!':
			if l.peek(1) == '=' {
				l.emitN(tokOp, "<>", 2)
			} else {
				return nil, newParseError(l.input, l.pos, "!", "unexpected '!'")
			}
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || c == '-' && l.peekDigit(1) && !l.afterValue():
			l.lexNumber()
		case c == '-':
			l.emit(tokMinus, "-")
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			return nil, newParseError(l.input, l.pos, string(c), "unexpected character %q", c)
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.input) {
		return l.input[l.pos+n]
	}
	return 0
}

func (l *lexer) peekDigit(n int) bool {
	c := l.peek(n)
	return c >= '0' && c <= '9'
}

// pqlKeywords are reserved words after which a '-' starts a negative number
// literal rather than a binary minus (e.g. BETWEEN -5 AND -1).
var pqlKeywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "in": true, "between": true, "group": true, "by": true,
	"order": true, "asc": true, "desc": true, "top": true, "limit": true,
}

// afterValue reports whether the previous token could end a value
// expression, in which case a following '-' is the binary operator
// (`a - 5`) rather than a negative-number prefix (`a = -5`).
func (l *lexer) afterValue() bool {
	if len(l.tokens) == 0 {
		return false
	}
	t := l.tokens[len(l.tokens)-1]
	switch t.kind {
	case tokNumber, tokString, tokRParen:
		return true
	case tokIdent:
		return !pqlKeywords[strings.ToLower(t.text)]
	}
	return false
}

func (l *lexer) emit(kind tokenKind, text string) { l.emitN(kind, text, 1) }

func (l *lexer) emitN(kind tokenKind, text string, n int) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: l.pos})
	l.pos += n
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if l.peek(1) == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return newParseError(l.input, start, string(quote), "unterminated string")
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
			(c == '-' || c == '+') && (l.input[l.pos-1] == 'e' || l.input[l.pos-1] == 'E') {
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.input[start:l.pos], pos: start})
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' || c == '$'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.input[start:l.pos], pos: start})
}
