// Package pql implements PQL, Pinot's SQL subset: selection, projection,
// aggregation, group-by and top-n queries over a single table, without joins
// or nested queries (paper section 3.1).
package pql

import (
	"fmt"
	"strconv"
	"strings"
)

// AggFunc identifies an aggregation function.
type AggFunc string

// Supported aggregation functions.
const (
	Count         AggFunc = "COUNT"
	Sum           AggFunc = "SUM"
	Min           AggFunc = "MIN"
	Max           AggFunc = "MAX"
	Avg           AggFunc = "AVG"
	DistinctCount AggFunc = "DISTINCTCOUNT"
)

// Percentile aggregations are written PERCENTILE<q>, e.g. PERCENTILE95.
// They require the original unaggregated data — exactly the class of
// queries the paper notes pre-aggregation cannot answer (section 2).
const percentilePrefix = "PERCENTILE"

// ParseAggFunc recognizes an aggregation function name (case-insensitive).
func ParseAggFunc(s string) (AggFunc, bool) {
	u := strings.ToUpper(s)
	switch AggFunc(u) {
	case Count, Sum, Min, Max, Avg, DistinctCount:
		return AggFunc(u), true
	}
	if q, ok := PercentileQuantile(AggFunc(u)); ok && q > 0 && q < 100 {
		return AggFunc(u), true
	}
	return "", false
}

// PercentileQuantile extracts the quantile of a PERCENTILE<q> function,
// reporting whether fn is a percentile aggregation.
func PercentileQuantile(fn AggFunc) (int, bool) {
	s := string(fn)
	if !strings.HasPrefix(s, percentilePrefix) || len(s) == len(percentilePrefix) {
		return 0, false
	}
	q := 0
	for _, c := range s[len(percentilePrefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		q = q*10 + int(c-'0')
		if q > 100 {
			return 0, false
		}
	}
	return q, true
}

// Expression is one item of a select list: either a plain column projection
// or an aggregation over a scalar expression ("*" only for COUNT). Column
// always holds the rendered argument text — the result column name and merge
// key — while Arg carries the expression tree when the argument is more than
// a bare column (nil otherwise, so column-bound paths see the shape they
// always did).
type Expression struct {
	IsAgg  bool
	Func   AggFunc
	Column string
	Arg    Expr
}

func (e Expression) String() string {
	if !e.IsAgg {
		return e.Column
	}
	return fmt.Sprintf("%s(%s)", strings.ToLower(string(e.Func)), e.Column)
}

// ArgExpr returns the aggregation argument as an expression tree: the Arg
// tree when present, otherwise a ColumnRef over Column.
func (e Expression) ArgExpr() Expr {
	if e.Arg != nil {
		return e.Arg
	}
	return ColumnRef{Name: e.Column}
}

// CompareOp is a comparison operator in a predicate.
type CompareOp string

// Supported comparison operators.
const (
	OpEq  CompareOp = "="
	OpNeq CompareOp = "<>"
	OpLt  CompareOp = "<"
	OpLte CompareOp = "<="
	OpGt  CompareOp = ">"
	OpGte CompareOp = ">="
)

// Predicate is a filter tree node.
type Predicate interface {
	fmt.Stringer
	isPredicate()
}

// Comparison is `column op literal`.
type Comparison struct {
	Column string
	Op     CompareOp
	Value  any // int64, float64, string or bool
}

func (Comparison) isPredicate() {}

func (p Comparison) String() string {
	return fmt.Sprintf("%s %s %s", formatColumn(p.Column), p.Op, formatLiteral(p.Value))
}

// In is `column [NOT] IN (v1, v2, ...)`.
type In struct {
	Column  string
	Values  []any
	Negated bool
}

func (In) isPredicate() {}

func (p In) String() string {
	vals := make([]string, len(p.Values))
	for i, v := range p.Values {
		vals[i] = formatLiteral(v)
	}
	op := "IN"
	if p.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", formatColumn(p.Column), op, strings.Join(vals, ", "))
}

// Between is `column BETWEEN lo AND hi` (inclusive both sides).
type Between struct {
	Column string
	Lo     any
	Hi     any
}

func (Between) isPredicate() {}

func (p Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", formatColumn(p.Column), formatLiteral(p.Lo), formatLiteral(p.Hi))
}

// And is the conjunction of its children.
type And struct {
	Children []Predicate
}

func (And) isPredicate() {}

func (p And) String() string {
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is the disjunction of its children.
type Or struct {
	Children []Predicate
}

func (Or) isPredicate() {}

func (p Or) String() string {
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Not negates its child.
type Not struct {
	Child Predicate
}

func (Not) isPredicate() {}

func (p Not) String() string { return "NOT " + p.Child.String() }

// OrderSpec is one ORDER BY term for selection queries.
type OrderSpec struct {
	Column     string
	Descending bool
}

func (o OrderSpec) String() string {
	if o.Descending {
		return o.Column + " DESC"
	}
	return o.Column + " ASC"
}

// Default result-size limits, matching Pinot's PQL defaults.
const (
	DefaultTop   = 10
	DefaultLimit = 10
)

// Query is a parsed PQL statement.
type Query struct {
	Table   string
	Select  []Expression
	Filter  Predicate // nil when there is no WHERE clause
	GroupBy []string
	// GroupByExprs carries expression trees for GROUP BY items that are
	// more than bare columns, aligned with GroupBy (nil entries for plain
	// columns). It is nil when every item is a plain column — GroupBy's
	// rendered strings remain the group column names and merge keys either
	// way.
	GroupByExprs []Expr
	OrderBy      []OrderSpec
	Top          int // group-by result groups
	Offset       int // selection offset
	Limit        int // selection row limit
}

// GroupByExpr returns the i-th GROUP BY item as an expression tree: the
// parsed tree for expression items, a ColumnRef for plain columns.
func (q *Query) GroupByExpr(i int) Expr {
	if i < len(q.GroupByExprs) && q.GroupByExprs[i] != nil {
		return q.GroupByExprs[i]
	}
	return ColumnRef{Name: q.GroupBy[i]}
}

// HasExprGroupBy reports whether any GROUP BY item is a derived expression.
func (q *Query) HasExprGroupBy() bool {
	for _, e := range q.GroupByExprs {
		if e != nil {
			return true
		}
	}
	return false
}

// IsAggregation reports whether the query computes aggregates.
func (q *Query) IsAggregation() bool {
	for _, e := range q.Select {
		if e.IsAgg {
			return true
		}
	}
	return false
}

// HasGroupBy reports whether the query groups results.
func (q *Query) HasGroupBy() bool { return len(q.GroupBy) > 0 }

// String renders the query back to PQL text.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sel := make([]string, len(q.Select))
	for i, e := range q.Select {
		sel[i] = e.String()
	}
	sb.WriteString(strings.Join(sel, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(q.Table)
	if q.Filter != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Filter.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(q.GroupBy, ", "))
	}
	if len(q.OrderBy) > 0 {
		terms := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			terms[i] = o.String()
		}
		sb.WriteString(" ORDER BY ")
		sb.WriteString(strings.Join(terms, ", "))
	}
	if q.HasGroupBy() && q.Top != DefaultTop {
		fmt.Fprintf(&sb, " TOP %d", q.Top)
	}
	if !q.IsAggregation() && (q.Limit != DefaultLimit || q.Offset != 0) {
		if q.Offset != 0 {
			fmt.Fprintf(&sb, " LIMIT %d, %d", q.Offset, q.Limit)
		} else {
			fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
		}
	}
	return sb.String()
}

// WithExtraFilter returns a copy of the query with pred ANDed onto the
// existing filter. It is the broker's hybrid-table rewriting primitive
// (paper Figure 6).
func (q *Query) WithExtraFilter(pred Predicate) *Query {
	out := *q
	switch {
	case q.Filter == nil:
		out.Filter = pred
	default:
		out.Filter = And{Children: []Predicate{q.Filter, pred}}
	}
	return &out
}

// formatColumn renders a column name at predicate position. Names that are
// not plain identifiers (e.g. a quoted column like '0-3', paper Figure 7's
// 'day') must re-render quoted, or the text would re-parse as an expression
// — breaking the round-trip/fixpoint guarantees the wire protocol relies on.
func formatColumn(name string) string {
	if isIdentifier(name) {
		return name
	}
	return formatLiteral(name)
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

func formatLiteral(v any) string {
	switch x := v.(type) {
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		// A double that happens to be integral must still render as a
		// double (2.5*2 → "5.0", not "5"): the canonical text re-parses,
		// and an int literal would change the expression's static type.
		s := strconv.FormatFloat(x, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return fmt.Sprint(v)
	}
}

// PredicateColumns returns the distinct column names referenced by a
// predicate tree.
func PredicateColumns(p Predicate) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Predicate)
	walk = func(p Predicate) {
		switch n := p.(type) {
		case Comparison:
			if !seen[n.Column] {
				seen[n.Column] = true
				out = append(out, n.Column)
			}
		case In:
			if !seen[n.Column] {
				seen[n.Column] = true
				out = append(out, n.Column)
			}
		case Between:
			if !seen[n.Column] {
				seen[n.Column] = true
				out = append(out, n.Column)
			}
		case ExprCompare:
			for _, side := range []Expr{n.LHS, n.RHS} {
				for _, c := range ExprColumns(side) {
					if !seen[c] {
						seen[c] = true
						out = append(out, c)
					}
				}
			}
		case And:
			for _, c := range n.Children {
				walk(c)
			}
		case Or:
			for _, c := range n.Children {
				walk(c)
			}
		case Not:
			walk(n.Child)
		}
	}
	if p != nil {
		walk(p)
	}
	return out
}
