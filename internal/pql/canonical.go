package pql

import "sort"

// Canonicalization rewrites a query into a normal form so that semantically
// identical statements render to the same text: the query-result cache keys
// on CanonicalString, so `WHERE a='x' AND b='y'` and the commuted
// `WHERE b='y' AND a='x'` must collide. The normal form flattens nested
// AND/OR chains, sorts commutative children by their rendered text, sorts IN
// lists, and drops degenerate single-child conjunctions. Rendering through
// Query.String then normalizes whitespace and keyword case for free.

// Canonical returns a copy of the query with its filter and every embedded
// expression in canonical form. The receiver is not modified. Parse already
// canonicalizes expressions, so for parsed queries the select/group-by
// rewrites are no-ops; programmatically built queries get normalized here.
func (q *Query) Canonical() *Query {
	out := *q
	out.Filter = CanonicalPredicate(q.Filter)
	copied := false
	for i, e := range q.Select {
		if e.Arg == nil {
			continue
		}
		if !copied {
			out.Select = append([]Expression(nil), q.Select...)
			copied = true
		}
		arg := CanonicalExpr(e.Arg)
		out.Select[i].Arg = arg
		out.Select[i].Column = arg.String()
	}
	if q.HasExprGroupBy() {
		out.GroupBy = append([]string(nil), q.GroupBy...)
		out.GroupByExprs = append([]Expr(nil), q.GroupByExprs...)
		for i, e := range q.GroupByExprs {
			if e == nil {
				continue
			}
			ce := CanonicalExpr(e)
			out.GroupByExprs[i] = ce
			out.GroupBy[i] = ce.String()
		}
	}
	return &out
}

// CanonicalString renders the canonical form of the query — the stable cache
// key text. Two queries that differ only in predicate order, whitespace, or
// keyword case produce the same CanonicalString.
func (q *Query) CanonicalString() string {
	return q.Canonical().String()
}

// CanonicalPredicate rewrites a predicate tree into canonical form: children
// of AND/OR are canonicalized, same-operator chains are flattened, the
// resulting commutative child lists are sorted by rendered text, and IN
// value lists are sorted. Nil stays nil.
func CanonicalPredicate(p Predicate) Predicate {
	switch n := p.(type) {
	case And:
		children := flattenAnd(n.Children)
		if len(children) == 1 {
			return children[0]
		}
		return And{Children: sortPredicates(children)}
	case Or:
		children := flattenOr(n.Children)
		if len(children) == 1 {
			return children[0]
		}
		return Or{Children: sortPredicates(children)}
	case Not:
		return Not{Child: CanonicalPredicate(n.Child)}
	case In:
		vals := append([]any(nil), n.Values...)
		sort.SliceStable(vals, func(i, j int) bool {
			return formatLiteral(vals[i]) < formatLiteral(vals[j])
		})
		return In{Column: n.Column, Values: vals, Negated: n.Negated}
	case ExprCompare:
		lhs, rhs := CanonicalExpr(n.LHS), CanonicalExpr(n.RHS)
		// A string literal on the left would render quoted, and the grammar
		// reads a leading quoted string at predicate position as a column
		// name (paper Figure 7's 'day' >= 15949). Canonicalize to what the
		// rendering re-parses as, keeping parse→render→parse a fixpoint.
		if ll, ok := lhs.(Literal); ok {
			if s, isStr := ll.Value.(string); isStr {
				lhs = ColumnRef{Name: s}
			}
		}
		// A comparison whose sides folded down to `column op literal`
		// collapses into the classic Comparison node, so index and pruning
		// plans apply to it.
		if cr, ok := lhs.(ColumnRef); ok {
			if lit, ok := rhs.(Literal); ok {
				return Comparison{Column: cr.Name, Op: n.Op, Value: lit.Value}
			}
		}
		return ExprCompare{LHS: lhs, Op: n.Op, RHS: rhs}
	default:
		return p
	}
}

// flattenAnd canonicalizes each child and splices nested ANDs into one
// chain, so (a AND (b AND c)) and ((a AND b) AND c) normalize identically.
func flattenAnd(children []Predicate) []Predicate {
	out := make([]Predicate, 0, len(children))
	for _, c := range children {
		cc := CanonicalPredicate(c)
		if nested, ok := cc.(And); ok {
			out = append(out, nested.Children...)
			continue
		}
		out = append(out, cc)
	}
	return out
}

func flattenOr(children []Predicate) []Predicate {
	out := make([]Predicate, 0, len(children))
	for _, c := range children {
		cc := CanonicalPredicate(c)
		if nested, ok := cc.(Or); ok {
			out = append(out, nested.Children...)
			continue
		}
		out = append(out, cc)
	}
	return out
}

// sortPredicates orders commutative children by rendered text. Children are
// already canonical, so the rendering is a stable sort key; duplicates keep
// their relative order (SliceStable) and the result stays deterministic.
func sortPredicates(children []Predicate) []Predicate {
	keys := make([]string, len(children))
	for i, c := range children {
		keys[i] = c.String()
	}
	idx := make([]int, len(children))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })
	out := make([]Predicate, len(children))
	for i, j := range idx {
		out[i] = children[j]
	}
	return out
}
