package pql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Scalar expression AST. Expressions appear as aggregation arguments, on
// either side of a WHERE comparison, and as GROUP BY keys. They are rendered
// with explicit parentheses around every binary operation so that
// Parse(q.String()) reproduces the exact tree — the broker re-renders queries
// before the scatter and servers re-parse them, so round-trip fidelity is a
// wire-protocol requirement, not a nicety.

// Expr is a scalar expression node.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// ColumnRef references a raw table column.
type ColumnRef struct {
	Name string
}

func (ColumnRef) isExpr() {}

func (e ColumnRef) String() string { return e.Name }

// Literal is a constant: int64, float64, string or bool.
type Literal struct {
	Value any
}

func (Literal) isExpr() {}

func (e Literal) String() string { return formatLiteral(e.Value) }

// ArithOp is a binary arithmetic operator.
type ArithOp string

// Supported arithmetic operators.
const (
	OpAdd ArithOp = "+"
	OpSub ArithOp = "-"
	OpMul ArithOp = "*"
	OpDiv ArithOp = "/"
)

// Arith applies a binary arithmetic operator.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (Arith) isExpr() {}

func (e Arith) String() string {
	return "(" + e.L.String() + " " + string(e.Op) + " " + e.R.String() + ")"
}

// Call invokes a builtin scalar function. Name is the canonical builtin name
// (see Builtin); the parser normalizes case on the way in.
type Call struct {
	Name string
	Args []Expr
}

func (Call) isExpr() {}

func (e Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// ExprCompare is a predicate comparing two scalar expressions. Plain
// `column op literal` comparisons keep the dedicated Comparison node (index
// and pruning paths key on it); ExprCompare covers every other shape.
type ExprCompare struct {
	LHS Expr
	Op  CompareOp
	RHS Expr
}

func (ExprCompare) isPredicate() {}

func (p ExprCompare) String() string {
	lhs := p.LHS.String()
	// A bare column reference at the head of a predicate may carry a
	// non-identifier name (the quoted-column form, paper Figure 7); it must
	// re-render quoted or the text would re-parse as arithmetic.
	if cr, ok := p.LHS.(ColumnRef); ok {
		lhs = formatColumn(cr.Name)
	}
	return fmt.Sprintf("%s %s %s", lhs, p.Op, p.RHS.String())
}

// builtinSpec describes one scalar builtin.
type builtinSpec struct {
	name             string // canonical rendering
	minArgs, maxArgs int
}

var builtins = map[string]builtinSpec{
	"timebucket": {name: "timeBucket", minArgs: 2, maxArgs: 2},
	"abs":        {name: "abs", minArgs: 1, maxArgs: 1},
	"lower":      {name: "lower", minArgs: 1, maxArgs: 1},
	"upper":      {name: "upper", minArgs: 1, maxArgs: 1},
	"concat":     {name: "concat", minArgs: 2, maxArgs: 16},
}

// Builtin resolves a function name (case-insensitive) to its canonical
// spelling and arity bounds.
func Builtin(name string) (canonical string, minArgs, maxArgs int, ok bool) {
	s, ok := builtins[strings.ToLower(name)]
	if !ok {
		return "", 0, 0, false
	}
	return s.name, s.minArgs, s.maxArgs, true
}

// ExprColumns returns the distinct column names referenced by an expression,
// in first-appearance order.
func ExprColumns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case ColumnRef:
			if !seen[n.Name] {
				seen[n.Name] = true
				out = append(out, n.Name)
			}
		case Arith:
			walk(n.L)
			walk(n.R)
		case Call:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// Scalar semantics shared by the canonicalizer's constant folder and the
// internal/expr interpreter. Keeping them in one place is what makes folding
// sound: a folded literal must be bit-identical to evaluating the same node
// at runtime.
//
// Typing rules: int64 op int64 stays int64 with wrap-around, except `/`
// which always divides as float64; any float64 operand promotes both sides
// to float64. Strings and bools do not participate in arithmetic (concat is
// the string operator).

// ArithScalars applies a binary arithmetic operator to two literal scalars.
func ArithScalars(op ArithOp, a, b any) (any, error) {
	ai, aInt := a.(int64)
	bi, bInt := b.(int64)
	if aInt && bInt && op != OpDiv {
		switch op {
		case OpAdd:
			return ai + bi, nil
		case OpSub:
			return ai - bi, nil
		case OpMul:
			return ai * bi, nil
		}
	}
	af, err := numericScalar(a)
	if err != nil {
		return nil, fmt.Errorf("cannot apply %s to %s", op, typeName(a))
	}
	bf, err := numericScalar(b)
	if err != nil {
		return nil, fmt.Errorf("cannot apply %s to %s", op, typeName(b))
	}
	switch op {
	case OpAdd:
		return af + bf, nil
	case OpSub:
		return af - bf, nil
	case OpMul:
		return af * bf, nil
	case OpDiv:
		return af / bf, nil
	}
	return nil, fmt.Errorf("unknown operator %q", op)
}

// CallScalars applies a builtin to literal scalar arguments. The name must
// already be canonical.
func CallScalars(name string, args []any) (any, error) {
	switch name {
	case "timeBucket":
		ts, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("timeBucket: first argument must be an integer, got %s", typeName(args[0]))
		}
		w, ok := args[1].(int64)
		if !ok || w <= 0 {
			return nil, fmt.Errorf("timeBucket: width must be a positive integer")
		}
		return FloorBucket(ts, w), nil
	case "abs":
		switch v := args[0].(type) {
		case int64:
			if v < 0 {
				return -v, nil // math.MinInt64 wraps, matching int64 negation
			}
			return v, nil
		case float64:
			return math.Abs(v), nil
		}
		return nil, fmt.Errorf("abs: argument must be numeric, got %s", typeName(args[0]))
	case "lower", "upper":
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("%s: argument must be a string, got %s", name, typeName(args[0]))
		}
		if name == "lower" {
			return strings.ToLower(s), nil
		}
		return strings.ToUpper(s), nil
	case "concat":
		var sb strings.Builder
		for _, a := range args {
			switch v := a.(type) {
			case string:
				sb.WriteString(v)
			case int64:
				sb.WriteString(strconv.FormatInt(v, 10))
			default:
				return nil, fmt.Errorf("concat: arguments must be strings or integers, got %s", typeName(a))
			}
		}
		return sb.String(), nil
	}
	return nil, fmt.Errorf("unknown function %q", name)
}

// FloorBucket rounds ts down to the start of its width-sized bucket,
// flooring toward negative infinity (so negative timestamps bucket
// correctly).
func FloorBucket(ts, width int64) int64 {
	q := ts / width
	if ts%width != 0 && (ts < 0) != (width < 0) {
		q--
	}
	return q * width
}

func numericScalar(v any) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	}
	return 0, fmt.Errorf("not numeric: %s", typeName(v))
}

func typeName(v any) string {
	switch v.(type) {
	case int64:
		return "long"
	case float64:
		return "double"
	case string:
		return "string"
	case bool:
		return "boolean"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// CanonicalExpr rewrites an expression into canonical form: children are
// canonicalized, all-constant subtrees fold to literals (using the same
// scalar semantics the interpreter runs, so the fold never changes results),
// and the two children of each commutative node (+, *) are ordered by
// rendered text so `a + b` and `b + a` share one rendering and therefore one
// result-cache entry. Chains are deliberately NOT re-associated: IEEE
// addition and multiplication commute but do not associate, and
// re-association would change double results.
func CanonicalExpr(e Expr) Expr {
	switch n := e.(type) {
	case Arith:
		l, r := CanonicalExpr(n.L), CanonicalExpr(n.R)
		if ll, lok := l.(Literal); lok {
			if rl, rok := r.(Literal); rok {
				if v, err := ArithScalars(n.Op, ll.Value, rl.Value); err == nil && foldable(v) {
					return Literal{Value: v}
				}
			}
		}
		if n.Op == OpAdd || n.Op == OpMul {
			if r.String() < l.String() {
				l, r = r, l
			}
		}
		return Arith{Op: n.Op, L: l, R: r}
	case Call:
		args := make([]Expr, len(n.Args))
		allConst := true
		for i, a := range n.Args {
			args[i] = CanonicalExpr(a)
			if _, ok := args[i].(Literal); !ok {
				allConst = false
			}
		}
		if allConst {
			vals := make([]any, len(args))
			for i, a := range args {
				vals[i] = a.(Literal).Value
			}
			if v, err := CallScalars(n.Name, vals); err == nil && foldable(v) {
				return Literal{Value: v}
			}
		}
		return Call{Name: n.Name, Args: args}
	default:
		return e
	}
}

// foldable rejects constants whose rendering would not survive a
// parse round trip (NaN and infinities have no literal syntax).
func foldable(v any) bool {
	f, ok := v.(float64)
	return !ok || (!math.IsNaN(f) && !math.IsInf(f, 0))
}
