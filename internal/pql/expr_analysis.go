package pql

// Static expression analysis used by planners. The dictionary-space engine
// (internal/query) may evaluate an expression once per dictionary entry and
// reuse the results for every document carrying that entry — which is only
// sound when the expression is a pure function of its column inputs.

// ExprDeterministic reports whether an expression is a pure function of its
// column inputs: same inputs, same output, no hidden state and no
// environment reads. Every current builtin (timeBucket, abs, lower, upper,
// concat) qualifies; unknown function names do not, so a future
// nondeterministic builtin (now(), rand(), ...) is excluded here by default
// rather than silently memoized.
func ExprDeterministic(e Expr) bool {
	switch n := e.(type) {
	case Literal, ColumnRef:
		return true
	case Arith:
		return ExprDeterministic(n.L) && ExprDeterministic(n.R)
	case Call:
		if _, _, _, ok := Builtin(n.Name); !ok {
			return false
		}
		for _, a := range n.Args {
			if !ExprDeterministic(a) {
				return false
			}
		}
		return true
	}
	return false
}

// PredicateHasExprCompare reports whether a filter tree contains at least
// one expression-comparison leaf; planners use it to skip dictionary-space
// setup for the common plain-predicate query.
func PredicateHasExprCompare(p Predicate) bool {
	switch n := p.(type) {
	case And:
		for _, c := range n.Children {
			if PredicateHasExprCompare(c) {
				return true
			}
		}
	case Or:
		for _, c := range n.Children {
			if PredicateHasExprCompare(c) {
				return true
			}
		}
	case Not:
		return PredicateHasExprCompare(n.Child)
	case ExprCompare:
		return true
	}
	return false
}
