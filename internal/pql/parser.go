package pql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a PQL statement.
//
//	SELECT <expr list | *> FROM <table>
//	  [WHERE <predicate>]
//	  [GROUP BY <col list>]
//	  [ORDER BY <col [ASC|DESC] list>]
//	  [TOP <n>]
//	  [LIMIT [<offset>,] <n>]
func Parse(input string) (*Query, error) {
	tokens, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) cur() token  { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }

func (p *parser) matchKeyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.matchKeyword(kw) {
		return fmt.Errorf("pql: expected %s, got %s at position %d", kw, p.cur(), p.cur().pos)
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, fmt.Errorf("pql: expected %s, got %s at position %d", what, t, t.pos)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Top: DefaultTop, Limit: DefaultLimit}
	sel, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	q.Select = sel
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	q.Table = tbl.text

	if p.matchKeyword("WHERE") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Filter = pred
	}
	if p.matchKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "group-by column")
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col.text)
			if p.cur().kind != tokComma {
				break
			}
			p.pos++
		}
	}
	if p.matchKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "order-by column")
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Column: col.text}
			if p.matchKeyword("DESC") {
				spec.Descending = true
			} else {
				p.matchKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, spec)
			if p.cur().kind != tokComma {
				break
			}
			p.pos++
		}
	}
	if p.matchKeyword("TOP") {
		n, err := p.parseInt("TOP count")
		if err != nil {
			return nil, err
		}
		q.Top = n
	}
	if p.matchKeyword("LIMIT") {
		n, err := p.parseInt("LIMIT count")
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokComma {
			p.pos++
			m, err := p.parseInt("LIMIT count")
			if err != nil {
				return nil, err
			}
			q.Offset, q.Limit = n, m
		} else {
			q.Limit = n
		}
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("pql: unexpected trailing input %s at position %d", p.cur(), p.cur().pos)
	}
	return q, nil
}

func (p *parser) parseInt(what string) (int, error) {
	t, err := p.expect(tokNumber, what)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("pql: invalid %s %q", what, t.text)
	}
	return n, nil
}

func (p *parser) parseSelectList() ([]Expression, error) {
	var out []Expression
	for {
		expr, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		out = append(out, expr)
		if p.cur().kind != tokComma {
			return out, nil
		}
		p.pos++
	}
}

func (p *parser) parseExpression() (Expression, error) {
	t := p.cur()
	if t.kind == tokStar {
		p.pos++
		return Expression{Column: "*"}, nil
	}
	if t.kind != tokIdent {
		return Expression{}, fmt.Errorf("pql: expected column or aggregation, got %s at position %d", t, t.pos)
	}
	p.pos++
	// Aggregation function call?
	if fn, ok := ParseAggFunc(t.text); ok && p.cur().kind == tokLParen {
		p.pos++
		var col string
		switch p.cur().kind {
		case tokStar:
			col = "*"
			p.pos++
		case tokIdent:
			col = p.next().text
		default:
			return Expression{}, fmt.Errorf("pql: expected column in %s(), got %s", fn, p.cur())
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return Expression{}, err
		}
		return Expression{IsAgg: true, Func: fn, Column: col}, nil
	}
	return Expression{Column: t.text}, nil
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Predicate{left}
	for p.matchKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return Or{Children: children}, nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Predicate{left}
	for {
		// Don't consume AND that belongs to a BETWEEN (handled there).
		if !p.matchKeyword("AND") {
			break
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return And{Children: children}, nil
}

func (p *parser) parseUnary() (Predicate, error) {
	if p.matchKeyword("NOT") {
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{Child: child}, nil
	}
	if p.cur().kind == tokLParen {
		p.pos++
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return pred, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Predicate, error) {
	colTok := p.cur()
	col := ""
	switch colTok.kind {
	case tokIdent:
		col = colTok.text
		p.pos++
	case tokString:
		// PQL allows quoted column names, e.g. 'day' >= 15949
		// (paper Figure 7).
		col = colTok.text
		p.pos++
	default:
		return nil, fmt.Errorf("pql: expected column name, got %s at position %d", colTok, colTok.pos)
	}
	t := p.cur()
	switch {
	case t.kind == tokOp:
		p.pos++
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return Comparison{Column: col, Op: CompareOp(t.text), Value: val}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "IN"):
		p.pos++
		vals, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return In{Column: col, Values: vals}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "NOT"):
		p.pos++
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		vals, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return In{Column: col, Values: vals, Negated: true}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "BETWEEN"):
		p.pos++
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return Between{Column: col, Lo: lo, Hi: hi}, nil
	}
	return nil, fmt.Errorf("pql: expected comparison operator after %q, got %s at position %d", col, t, t.pos)
}

func (p *parser) parseLiteralList() ([]any, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var out []any
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if p.cur().kind == tokComma {
			p.pos++
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseLiteral() (any, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return t.text, nil
	case tokNumber:
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return n, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("pql: invalid number %q at position %d", t.text, t.pos)
		}
		return f, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
	}
	return nil, fmt.Errorf("pql: expected literal, got %s at position %d", t, t.pos)
}

func validate(q *Query) error {
	hasAgg, hasPlain := false, false
	for _, e := range q.Select {
		if e.IsAgg {
			hasAgg = true
			if e.Column == "*" && e.Func != Count {
				return fmt.Errorf("pql: %s(*) is not supported, only COUNT(*)", e.Func)
			}
		} else {
			hasPlain = true
			if e.Column == "*" && len(q.Select) > 1 {
				return fmt.Errorf("pql: '*' cannot be combined with other select items")
			}
		}
	}
	if hasAgg && hasPlain {
		// Plain columns may accompany aggregations only as redundant
		// projections of GROUP BY columns (paper Figure 7 style).
		grouped := make(map[string]bool, len(q.GroupBy))
		for _, g := range q.GroupBy {
			grouped[g] = true
		}
		for _, e := range q.Select {
			if !e.IsAgg && !grouped[e.Column] {
				return fmt.Errorf("pql: column %q in select list must appear in GROUP BY", e.Column)
			}
		}
	}
	if q.HasGroupBy() && !hasAgg {
		return fmt.Errorf("pql: GROUP BY requires aggregations in the select list")
	}
	if len(q.OrderBy) > 0 && hasAgg {
		return fmt.Errorf("pql: ORDER BY applies to selection queries only")
	}
	return nil
}
