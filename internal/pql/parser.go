package pql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a PQL statement.
//
//	SELECT <expr list | *> FROM <table>
//	  [WHERE <predicate>]
//	  [GROUP BY <col list>]
//	  [ORDER BY <col [ASC|DESC] list>]
//	  [TOP <n>]
//	  [LIMIT [<offset>,] <n>]
func Parse(input string) (*Query, error) {
	tokens, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseExpr parses a standalone scalar expression (table-config transforms,
// tests). The result is canonicalized, so equal expressions render equal.
func ParseExpr(input string) (Expr, error) {
	tokens, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, tokens: tokens}
	e, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected %s after expression", t)
	}
	return CanonicalExpr(e), nil
}

type parser struct {
	input  string
	tokens []token
	pos    int
}

func (p *parser) cur() token  { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }
func (p *parser) peek() token { return p.tokens[min(p.pos+1, len(p.tokens)-1)] }

// errf builds a positioned ParseError anchored at token t.
func (p *parser) errf(t token, format string, args ...any) error {
	text := t.text
	if t.kind == tokEOF {
		text = ""
	}
	return newParseError(p.input, t.pos, text, format, args...)
}

func (p *parser) matchKeyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.matchKeyword(kw) {
		return p.errf(p.cur(), "expected %s, got %s", kw, p.cur())
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, p.errf(t, "expected %s, got %s", what, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Top: DefaultTop, Limit: DefaultLimit}
	sel, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	q.Select = sel
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	q.Table = tbl.text

	if p.matchKeyword("WHERE") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Filter = pred
	}
	if p.matchKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		hasExpr := false
		var exprs []Expr
		for {
			itemTok := p.cur()
			e, err := p.parseAddExpr()
			if err != nil {
				return nil, err
			}
			e = CanonicalExpr(e)
			switch n := e.(type) {
			case ColumnRef:
				q.GroupBy = append(q.GroupBy, n.Name)
				exprs = append(exprs, nil)
			case Literal:
				return nil, p.errf(itemTok, "GROUP BY expression must reference a column")
			default:
				q.GroupBy = append(q.GroupBy, e.String())
				exprs = append(exprs, e)
				hasExpr = true
			}
			if p.cur().kind != tokComma {
				break
			}
			p.pos++
		}
		if hasExpr {
			q.GroupByExprs = exprs
		}
	}
	if p.matchKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "order-by column")
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Column: col.text}
			if p.matchKeyword("DESC") {
				spec.Descending = true
			} else {
				p.matchKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, spec)
			if p.cur().kind != tokComma {
				break
			}
			p.pos++
		}
	}
	if p.matchKeyword("TOP") {
		n, err := p.parseInt("TOP count")
		if err != nil {
			return nil, err
		}
		q.Top = n
	}
	if p.matchKeyword("LIMIT") {
		n, err := p.parseInt("LIMIT count")
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokComma {
			p.pos++
			m, err := p.parseInt("LIMIT count")
			if err != nil {
				return nil, err
			}
			q.Offset, q.Limit = n, m
		} else {
			q.Limit = n
		}
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf(p.cur(), "unexpected trailing input %s", p.cur())
	}
	return q, nil
}

func (p *parser) parseInt(what string) (int, error) {
	t, err := p.expect(tokNumber, what)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errf(t, "invalid %s %q", what, t.text)
	}
	return n, nil
}

func (p *parser) parseSelectList() ([]Expression, error) {
	var out []Expression
	for {
		expr, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		out = append(out, expr)
		if p.cur().kind != tokComma {
			return out, nil
		}
		p.pos++
	}
}

func (p *parser) parseExpression() (Expression, error) {
	t := p.cur()
	if t.kind == tokStar {
		p.pos++
		return Expression{Column: "*"}, nil
	}
	if t.kind != tokIdent {
		return Expression{}, p.errf(t, "expected column or aggregation, got %s", t)
	}
	// Aggregation function call? The argument is a full scalar expression;
	// simple columns keep Arg nil so existing column-bound paths see the
	// shape they always did.
	if fn, ok := ParseAggFunc(t.text); ok && p.peek().kind == tokLParen {
		p.pos += 2
		e := Expression{IsAgg: true, Func: fn}
		if p.cur().kind == tokStar {
			e.Column = "*"
			p.pos++
		} else {
			arg, err := p.parseAddExpr()
			if err != nil {
				return Expression{}, err
			}
			switch n := CanonicalExpr(arg).(type) {
			case ColumnRef:
				e.Column = n.Name
			case Literal:
				return Expression{}, p.errf(t, "%s() argument must reference a column", fn)
			default:
				e.Column, e.Arg = n.String(), n
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return Expression{}, err
		}
		return e, nil
	}
	item, err := p.parseAddExpr()
	if err != nil {
		return Expression{}, err
	}
	if cr, ok := item.(ColumnRef); ok {
		return Expression{Column: cr.Name}, nil
	}
	return Expression{}, p.errf(t, "expressions in the select list must be aggregation arguments")
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Predicate{left}
	for p.matchKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return Or{Children: children}, nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Predicate{left}
	for {
		// Don't consume AND that belongs to a BETWEEN (handled there).
		if !p.matchKeyword("AND") {
			break
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return And{Children: children}, nil
}

func (p *parser) parseUnary() (Predicate, error) {
	if p.matchKeyword("NOT") {
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{Child: child}, nil
	}
	if p.cur().kind == tokLParen {
		// '(' is ambiguous: a predicate group `(a = 1 OR b = 2)` or a
		// parenthesized expression `(a + b) > 1`. Try the group reading
		// first and backtrack into the expression grammar on failure.
		save := p.pos
		p.pos++
		pred, err := p.parseOr()
		if err == nil {
			if _, err = p.expect(tokRParen, ")"); err == nil {
				return pred, nil
			}
		}
		p.pos = save
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Predicate, error) {
	// PQL allows quoted column names at predicate position, e.g.
	// 'day' >= 15949 (paper Figure 7): a leading string token followed by a
	// predicate operator is a column reference, not a literal.
	if t := p.cur(); t.kind == tokString && p.predOpFollows() {
		p.pos++
		return p.parseColumnPredicate(t.text)
	}
	lhs, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	if cr, ok := lhs.(ColumnRef); ok {
		return p.parseColumnPredicate(cr.Name)
	}
	t := p.cur()
	if t.kind != tokOp {
		return nil, p.errf(t, "expected comparison operator after expression, got %s", t)
	}
	p.pos++
	rhs, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	return ExprCompare{LHS: CanonicalExpr(lhs), Op: CompareOp(t.text), RHS: CanonicalExpr(rhs)}, nil
}

// predOpFollows reports whether the token after the current one starts a
// predicate tail (a comparison operator or IN/NOT IN/BETWEEN).
func (p *parser) predOpFollows() bool {
	t := p.peek()
	if t.kind == tokOp {
		return true
	}
	return t.kind == tokIdent && (strings.EqualFold(t.text, "IN") ||
		strings.EqualFold(t.text, "NOT") || strings.EqualFold(t.text, "BETWEEN"))
}

// parseColumnPredicate parses the predicate tail after a column reference.
// `col op literal` yields the classic Comparison node (index and pruning
// plans key on it); an expression right-hand side yields ExprCompare.
func (p *parser) parseColumnPredicate(col string) (Predicate, error) {
	t := p.cur()
	switch {
	case t.kind == tokOp:
		p.pos++
		rhs, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		if lit, ok := CanonicalExpr(rhs).(Literal); ok {
			return Comparison{Column: col, Op: CompareOp(t.text), Value: lit.Value}, nil
		}
		return ExprCompare{LHS: ColumnRef{Name: col}, Op: CompareOp(t.text), RHS: CanonicalExpr(rhs)}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "IN"):
		p.pos++
		vals, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return In{Column: col, Values: vals}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "NOT"):
		p.pos++
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		vals, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return In{Column: col, Values: vals, Negated: true}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "BETWEEN"):
		p.pos++
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return Between{Column: col, Lo: lo, Hi: hi}, nil
	}
	return nil, p.errf(t, "expected comparison operator after %q, got %s", col, t)
}

// Expression grammar: addExpr := mulExpr (('+'|'-') mulExpr)*
//
//	mulExpr := primary (('*'|'/') primary)*
//	primary := number | string | bool | column | fn(args) | '(' addExpr ')'
//
// '*' means multiplication here; the select-list star is consumed before the
// expression parser ever runs.
func (p *parser) parseAddExpr() (Expr, error) {
	left, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch p.cur().kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseMulExpr()
		if err != nil {
			return nil, err
		}
		left = Arith{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMulExpr() (Expr, error) {
	left, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch p.cur().kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parsePrimaryExpr()
		if err != nil {
			return nil, err
		}
		left = Arith{Op: op, L: left, R: right}
	}
}

func (p *parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		v, err := p.numberValue(t)
		if err != nil {
			return nil, err
		}
		return Literal{Value: v}, nil
	case tokMinus:
		// Unary minus binds to a numeric literal only.
		if p.peek().kind != tokNumber {
			return nil, p.errf(t, "expected number after unary '-'")
		}
		p.pos++
		nt := p.next()
		v, err := p.numberValue(nt)
		if err != nil {
			return nil, err
		}
		switch x := v.(type) {
		case int64:
			return Literal{Value: -x}, nil
		case float64:
			return Literal{Value: -x}, nil
		}
		return nil, p.errf(nt, "invalid number %q", nt.text)
	case tokString:
		p.pos++
		return Literal{Value: t.text}, nil
	case tokLParen:
		p.pos++
		e, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			return p.parseCallExpr()
		}
		p.pos++
		switch strings.ToLower(t.text) {
		case "true":
			return Literal{Value: true}, nil
		case "false":
			return Literal{Value: false}, nil
		}
		return ColumnRef{Name: t.text}, nil
	}
	return nil, p.errf(t, "expected expression, got %s", t)
}

func (p *parser) parseCallExpr() (Expr, error) {
	t := p.next() // function name; '(' is next
	name, minArgs, maxArgs, ok := Builtin(t.text)
	if !ok {
		return nil, p.errf(t, "unknown function %q", t.text)
	}
	p.pos++ // consume '('
	var args []Expr
	for {
		a, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.cur().kind != tokComma {
			break
		}
		p.pos++
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if len(args) < minArgs || len(args) > maxArgs {
		if minArgs == maxArgs {
			return nil, p.errf(t, "%s() takes %d argument(s), got %d", name, minArgs, len(args))
		}
		return nil, p.errf(t, "%s() takes %d to %d arguments, got %d", name, minArgs, maxArgs, len(args))
	}
	return Call{Name: name, Args: args}, nil
}

// numberValue converts a number token exactly as parseLiteral does:
// integer-looking text becomes int64, everything else float64.
func (p *parser) numberValue(t token) (any, error) {
	if !strings.ContainsAny(t.text, ".eE") {
		if n, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return n, nil
		}
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return nil, p.errf(t, "invalid number %q", t.text)
	}
	return f, nil
}

func (p *parser) parseLiteralList() ([]any, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var out []any
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if p.cur().kind == tokComma {
			p.pos++
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseLiteral() (any, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return t.text, nil
	case tokNumber:
		return p.numberValue(t)
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
	}
	return nil, p.errf(t, "expected literal, got %s", t)
}

func validate(q *Query) error {
	hasAgg, hasPlain := false, false
	for _, e := range q.Select {
		if e.IsAgg {
			hasAgg = true
			if e.Column == "*" && e.Func != Count {
				return fmt.Errorf("pql: %s(*) is not supported, only COUNT(*)", e.Func)
			}
		} else {
			hasPlain = true
			if e.Column == "*" && len(q.Select) > 1 {
				return fmt.Errorf("pql: '*' cannot be combined with other select items")
			}
		}
	}
	if hasAgg && hasPlain {
		// Plain columns may accompany aggregations only as redundant
		// projections of GROUP BY columns (paper Figure 7 style).
		grouped := make(map[string]bool, len(q.GroupBy))
		for _, g := range q.GroupBy {
			grouped[g] = true
		}
		for _, e := range q.Select {
			if !e.IsAgg && !grouped[e.Column] {
				return fmt.Errorf("pql: column %q in select list must appear in GROUP BY", e.Column)
			}
		}
	}
	if q.HasGroupBy() && !hasAgg {
		return fmt.Errorf("pql: GROUP BY requires aggregations in the select list")
	}
	if len(q.OrderBy) > 0 && hasAgg {
		return fmt.Errorf("pql: ORDER BY applies to selection queries only")
	}
	return nil
}
