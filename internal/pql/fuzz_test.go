package pql

import "testing"

// FuzzParsePQL holds two properties over arbitrary input: the parser never
// panics (it must reject hostile queries with a ParseError, nothing louder),
// and any input it does accept canonicalizes to text that re-parses to the
// same canonical text — the broker re-renders queries before the scatter, so
// a parse→render→parse mismatch would corrupt queries on the wire.
func FuzzParsePQL(f *testing.F) {
	seeds := []string{
		"SELECT count(*) FROM events",
		"SELECT sum(clicks), count(*) FROM events WHERE country = 'us' AND day BETWEEN 15949 AND 15955 GROUP BY country TOP 10",
		"SELECT memberId, clicks FROM events WHERE memberId IN (1, 2, 3) ORDER BY clicks DESC LIMIT 5, 20",
		"SELECT sum(clicks + 1) FROM events WHERE timeBucket(day, 7) = 15949 GROUP BY upper(country) TOP 5",
		"SELECT avg(abs(clicks - 500) * 2.5) FROM events WHERE NOT (clicks / 3 > day OR country <> 'de')",
		"SELECT percentile95(clicks) FROM events WHERE 'day' >= 15949",
		"SELECT distinctcount(memberId) FROM events WHERE concat(country, '-', day) = 'us-15949'",
		"SELECT sum(clicks) FROM events WHERE clicks + 2.5e-07 < 1e+30 GROUP BY timeBucket(day, 86400)",
		"select Sum( clicks )  from events  where (country='us')and(day>1)",
		"SELECT count(*) FROM T WHERE a IN ('x''y', '', 'z') AND b NOT IN (1,2)",
		"SELECT count(*) FROM",
		"SELECT sum(clicks +) FROM T",
		"GROUP BY",
		"'",
		"SELECT count(*) FROM T WHERE upper(a, b) = 'X'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := Parse(in)
		if err != nil {
			return
		}
		canon := q.CanonicalString()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical text of %q does not re-parse: %q: %v", in, canon, err)
		}
		if again := q2.CanonicalString(); again != canon {
			t.Fatalf("canonicalization of %q is not a fixpoint:\n  first:  %q\n  second: %q", in, canon, again)
		}
	})
}
