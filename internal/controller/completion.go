package controller

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"

	"pinot/internal/helix"
	"pinot/internal/segment"
	"pinot/internal/table"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

func unmarshalTableConfig(data []byte) (*table.Config, error) {
	var cfg table.Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, err
	}
	return &cfg, nil
}

func crc32Of(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// completionState is a phase of the per-segment completion FSM.
type completionState uint8

const (
	// gathering: collecting replica polls until all report or the window
	// elapses.
	gathering completionState = iota
	// committing: a committer has been designated and asked to commit.
	committing
	// committed: a copy is durable; stragglers get KEEP or DISCARD.
	committed
)

// completionFSM coordinates the replicas of one consuming segment (paper
// 3.3.6): it waits until enough replicas have polled (or enough time has
// passed), catches every replica up to the largest observed offset, and
// picks one replica at that offset to be the committer.
type completionFSM struct {
	resource string
	segment  string
	window   time.Duration

	state           completionState
	polls           map[string]int64 // instance -> reported offset
	firstPoll       time.Time
	maxOffset       int64
	committer       string
	commitAsked     time.Time
	committedOffset int64
	expectedPolls   int
}

func newCompletionFSM(resource, seg string, replicas int, window time.Duration) *completionFSM {
	return &completionFSM{
		resource:      resource,
		segment:       seg,
		window:        window,
		polls:         map[string]int64{},
		maxOffset:     -1,
		expectedPolls: replicas,
	}
}

// onPoll computes the instruction for a replica poll.
func (f *completionFSM) onPoll(instance string, offset int64, now time.Time) *transport.SegmentConsumedResponse {
	if f.state == committed {
		if offset == f.committedOffset {
			return &transport.SegmentConsumedResponse{Action: transport.ActionKeep}
		}
		return &transport.SegmentConsumedResponse{Action: transport.ActionDiscard}
	}
	if len(f.polls) == 0 {
		f.firstPoll = now
	}
	f.polls[instance] = offset
	if offset > f.maxOffset {
		f.maxOffset = offset
		if f.state == committing && f.committer != instance {
			// A replica surged past the designated committer (it
			// consumed more before its first poll): the committer
			// designation is stale. Re-gather.
			f.state = gathering
			f.committer = ""
		}
	}
	switch f.state {
	case gathering:
		allPolled := len(f.polls) >= f.expectedPolls
		windowOver := now.Sub(f.firstPoll) >= f.window
		if !allPolled && !windowOver {
			return &transport.SegmentConsumedResponse{Action: transport.ActionHold}
		}
		// Catch this replica up, or make it the committer.
		if offset < f.maxOffset {
			return &transport.SegmentConsumedResponse{Action: transport.ActionCatchup, TargetOffset: f.maxOffset}
		}
		f.state = committing
		f.committer = instance
		f.commitAsked = now
		return &transport.SegmentConsumedResponse{Action: transport.ActionCommit}
	case committing:
		if offset < f.maxOffset {
			return &transport.SegmentConsumedResponse{Action: transport.ActionCatchup, TargetOffset: f.maxOffset}
		}
		if instance == f.committer {
			f.commitAsked = now
			return &transport.SegmentConsumedResponse{Action: transport.ActionCommit}
		}
		// The committer may have died mid-commit: after a grace
		// period, promote this caught-up replica.
		if now.Sub(f.commitAsked) >= f.window {
			f.committer = instance
			f.commitAsked = now
			return &transport.SegmentConsumedResponse{Action: transport.ActionCommit}
		}
		return &transport.SegmentConsumedResponse{Action: transport.ActionHold}
	}
	return &transport.SegmentConsumedResponse{Action: transport.ActionHold}
}

// SegmentConsumed handles a replica's completion-protocol poll. Non-leader
// controllers answer NOTLEADER (paper 3.3.6).
func (c *Controller) SegmentConsumed(ctx context.Context, req *transport.SegmentConsumedRequest) (*transport.SegmentConsumedResponse, error) {
	if !c.IsLeader() {
		return c.verdict(&transport.SegmentConsumedResponse{Action: transport.ActionNotLeader}), nil
	}
	// A segment already committed (e.g. before a controller failover)
	// answers from durable metadata.
	if meta, err := ReadSegmentMeta(c.session(), c.cfg.Cluster, req.Resource, req.Segment); err == nil && meta.Status == table.StatusDone {
		if req.Offset == meta.EndOffset {
			return c.verdict(&transport.SegmentConsumedResponse{Action: transport.ActionKeep}), nil
		}
		return c.verdict(&transport.SegmentConsumedResponse{Action: transport.ActionDiscard}), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := req.Resource + "/" + req.Segment
	fsm, ok := c.completions[key]
	if !ok {
		replicas := c.replicaCount(req.Resource, req.Segment)
		fsm = newCompletionFSM(req.Resource, req.Segment, replicas, c.cfg.CompletionWindow)
		c.completions[key] = fsm
	}
	return c.verdict(fsm.onPoll(req.Instance, req.Offset, time.Now())), nil
}

func (c *Controller) replicaCount(resource, seg string) int {
	is, err := c.helixAdmin().IdealStateOf(resource)
	if err != nil {
		return 1
	}
	n := len(is.Partitions[seg])
	if n == 0 {
		return 1
	}
	return n
}

// CommitSegment accepts the designated committer's sealed segment: the blob
// becomes durable, metadata flips to DONE, all replicas' desired state moves
// to ONLINE, and the next consuming segment is created at the committed
// offset.
func (c *Controller) CommitSegment(ctx context.Context, req *transport.SegmentCommitRequest) (*transport.SegmentCommitResponse, error) {
	if !c.IsLeader() {
		return &transport.SegmentCommitResponse{Success: false, Reason: "not leader"}, nil
	}
	c.mu.Lock()
	key := req.Resource + "/" + req.Segment
	fsm, ok := c.completions[key]
	if !ok || fsm.state == committed {
		alreadyDone := ok && fsm.state == committed
		c.mu.Unlock()
		if alreadyDone {
			return &transport.SegmentCommitResponse{Success: false, Reason: "already committed"}, nil
		}
		return &transport.SegmentCommitResponse{Success: false, Reason: "no completion in progress"}, nil
	}
	if fsm.committer != req.Instance {
		c.mu.Unlock()
		return &transport.SegmentCommitResponse{Success: false, Reason: "not the designated committer"}, nil
	}
	if req.Offset != fsm.maxOffset {
		c.mu.Unlock()
		return &transport.SegmentCommitResponse{Success: false, Reason: fmt.Sprintf("offset %d does not match target %d", req.Offset, fsm.maxOffset)}, nil
	}
	c.mu.Unlock()

	if err := c.finalizeCommit(req); err != nil {
		return &transport.SegmentCommitResponse{Success: false, Reason: err.Error()}, nil
	}
	c.mu.Lock()
	fsm.state = committed
	fsm.committedOffset = req.Offset
	c.mu.Unlock()
	c.met.commits.With(c.cfg.Instance, req.Resource).Inc()
	return &transport.SegmentCommitResponse{Success: true}, nil
}

func (c *Controller) finalizeCommit(req *transport.SegmentCommitRequest) error {
	seg, err := segment.Unmarshal(req.Blob)
	if err != nil {
		return fmt.Errorf("controller: committed segment corrupt: %w", err)
	}
	cfg, err := c.TableConfig(req.Resource)
	if err != nil {
		return err
	}
	crc := crc32Of(req.Blob)
	objKey := table.SegmentObjectKey(req.Resource, req.Segment, crc)
	if err := c.objects.Put(objKey, req.Blob); err != nil {
		return err
	}
	metaPath := c.segmentMetaPath(req.Resource, req.Segment)
	data, version, err := c.session().Get(metaPath)
	if err != nil {
		return err
	}
	meta, err := table.UnmarshalSegmentMeta(data)
	if err != nil {
		return err
	}
	smeta := seg.Metadata()
	meta.Status = table.StatusDone
	meta.NumDocs = seg.NumDocs()
	meta.SizeBytes = int64(len(req.Blob))
	meta.MinTime = smeta.MinTime
	meta.MaxTime = smeta.MaxTime
	meta.ObjectKey = objKey
	meta.CRC = crc
	meta.EndOffset = req.Offset
	if _, err := c.session().Set(metaPath, meta.Marshal(), version); err != nil {
		return err
	}
	c.met.segStates.With(c.cfg.Instance, string(table.StatusDone)).Inc()

	// Next consuming segment continues from the committed offset.
	tableName, partition, seq, err := table.ParseConsumingSegmentName(req.Segment)
	if err != nil {
		return err
	}
	nextName := table.ConsumingSegmentName(tableName, partition, seq+1)
	nextMeta := &table.SegmentMeta{
		Name:        nextName,
		Resource:    req.Resource,
		Status:      table.StatusInProgress,
		Partition:   partition,
		StartOffset: req.Offset,
		EndOffset:   -1,
	}
	if err := c.session().Create(c.segmentMetaPath(req.Resource, nextName), nextMeta.Marshal()); err != nil && err != zkmeta.ErrNodeExists {
		return err
	}
	c.met.segStates.With(c.cfg.Instance, string(table.StatusInProgress)).Inc()

	servers, err := c.eligibleServers(cfg)
	if err != nil {
		return err
	}
	err = c.helixAdmin().UpdateIdealState(req.Resource, func(is *helix.IdealState) bool {
		for inst := range is.Partitions[req.Segment] {
			is.Partitions[req.Segment][inst] = helix.StateOnline
		}
		if _, ok := is.Partitions[nextName]; !ok {
			replicas := pickReplicas(servers, is, cfg.Replicas, partition+seq+1)
			assignment := map[string]string{}
			for _, r := range replicas {
				assignment[r] = helix.StateConsuming
			}
			is.Partitions[nextName] = assignment
		}
		return true
	})
	if err != nil {
		return err
	}
	c.helixCtl.Kick()
	return nil
}
