package controller

import (
	"pinot/internal/metrics"

	"pinot/internal/transport"
)

// controllerMetrics caches the controller's instrument handles. The verdict
// counters are the executable record of the completion protocol: a test can
// drive a segment through its lifecycle and assert the exact transcript.
type controllerMetrics struct {
	reg      *metrics.Registry
	instance string

	verdicts  *metrics.Family // labels: instance, action
	commits   *metrics.Family // labels: instance, resource
	segStates *metrics.Family // labels: instance, status
}

func newControllerMetrics(reg *metrics.Registry, instance string) *controllerMetrics {
	if reg == nil {
		reg = metrics.Default()
	}
	m := &controllerMetrics{reg: reg, instance: instance}
	m.verdicts = reg.Counter("pinot_controller_completion_verdicts_total",
		"Completion-protocol instructions issued, by action.", "instance", "action")
	m.commits = reg.Counter("pinot_controller_segments_committed_total",
		"Realtime segments made durable via the commit protocol.", "instance", "resource")
	m.segStates = reg.Counter("pinot_controller_segment_states_total",
		"Segment metadata states written by the controller.", "instance", "status")
	return m
}

// verdict counts one completion-protocol instruction and passes it through,
// so every SegmentConsumed return path stays a single expression.
func (c *Controller) verdict(r *transport.SegmentConsumedResponse) *transport.SegmentConsumedResponse {
	c.met.verdicts.With(c.cfg.Instance, string(r.Action)).Inc()
	return r
}
