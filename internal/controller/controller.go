// Package controller implements the Pinot controller (paper 3.2): the
// authority over segment-to-server mappings. It admits tables, validates and
// assigns uploaded segments, garbage-collects expired segments, runs the
// realtime segment completion protocol (3.3.6), and schedules minion tasks.
// Multiple controller instances run per cluster with a single Helix-elected
// master; the others stay idle.
package controller

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pinot/internal/helix"
	"pinot/internal/metrics"
	"pinot/internal/objstore"
	"pinot/internal/segment"
	"pinot/internal/stream"
	"pinot/internal/table"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

// ErrNotLeader is returned by admin operations on a non-leader controller.
var ErrNotLeader = errors.New("controller: not the lead controller")

// Config tunes a controller instance.
type Config struct {
	Cluster  string
	Instance string
	// CompletionWindow is how long the completion FSM waits for replica
	// polls before designating a committer.
	CompletionWindow time.Duration
	// RetentionInterval is the period of the retention manager sweep.
	RetentionInterval time.Duration
	// Metrics receives the controller's instrumentation; nil means the
	// process-wide metrics.Default().
	Metrics *metrics.Registry
}

func (c *Config) withDefaults() {
	if c.CompletionWindow <= 0 {
		c.CompletionWindow = 200 * time.Millisecond
	}
	if c.RetentionInterval <= 0 {
		c.RetentionInterval = 250 * time.Millisecond
	}
}

// Controller is one controller instance.
type Controller struct {
	cfg      Config
	store    zkmeta.Endpoint
	objects  objstore.Store
	streams  *stream.Cluster
	helixCtl *helix.Controller
	met      *controllerMetrics

	// conn bundles the metadata session with the helix admin built on it;
	// both are replaced together when the session expires.
	conn   atomic.Pointer[zkConn]
	closed atomic.Bool

	mu          sync.Mutex
	completions map[string]*completionFSM // resource/segment -> FSM

	stop chan struct{}
	done chan struct{}
}

type zkConn struct {
	sess  zkmeta.Client
	admin *helix.Admin
}

func (c *Controller) session() zkmeta.Client   { return c.conn.Load().sess }
func (c *Controller) helixAdmin() *helix.Admin { return c.conn.Load().admin }

// connect opens a metadata session (replacing any expired one) and arms the
// expiry hook so the controller reconnects like a real Zookeeper client:
// durable metadata survives, only in-flight operations fail.
func (c *Controller) connect() {
	sess := c.store.NewClient()
	sess.OnExpire(func() {
		if c.closed.Load() {
			return
		}
		c.connect()
	})
	c.conn.Store(&zkConn{sess: sess, admin: helix.NewAdmin(sess, c.cfg.Cluster)})
}

// ExpireSession simulates Zookeeper session expiry on this controller (chaos
// hook): both the metadata session and the leader-election session expire,
// so leadership is lost and must be re-won over fresh sessions. In-flight
// completion-protocol writes fail and replicas retry, exactly the scenario
// of paper 3.3.6's failure analysis.
func (c *Controller) ExpireSession() {
	if c.helixCtl != nil {
		c.helixCtl.ExpireSession()
	}
	c.session().Expire()
}

// New creates a controller instance attached to the shared substrates.
func New(cfg Config, store zkmeta.Endpoint, objects objstore.Store, streams *stream.Cluster) *Controller {
	cfg.withDefaults()
	return &Controller{
		cfg:         cfg,
		store:       store,
		objects:     objects,
		streams:     streams,
		met:         newControllerMetrics(cfg.Metrics, cfg.Instance),
		completions: map[string]*completionFSM{},
	}
}

// Metrics returns the registry this controller records into.
func (c *Controller) Metrics() *metrics.Registry { return c.met.reg }

// Instance returns the controller's instance name.
func (c *Controller) Instance() string { return c.cfg.Instance }

// Start joins the cluster and begins contending for leadership.
func (c *Controller) Start() error {
	c.connect()
	if err := c.helixAdmin().CreateCluster(); err != nil {
		return err
	}
	for _, p := range []string{
		helix.PropertyStorePath(c.cfg.Cluster, "CONFIGS"),
		helix.PropertyStorePath(c.cfg.Cluster, "CONFIGS", "TABLE"),
		helix.PropertyStorePath(c.cfg.Cluster, "SEGMENTS"),
		helix.PropertyStorePath(c.cfg.Cluster, "TASKS"),
	} {
		if err := c.session().Create(p, nil); err != nil && err != zkmeta.ErrNodeExists {
			return err
		}
	}
	c.helixCtl = helix.NewController(c.store, c.cfg.Cluster, c.cfg.Instance)
	c.helixCtl.OnLeadershipChange(func(leader bool) {
		if leader {
			// Paper 3.3.6: a new blank completion state machine on
			// the new leader; this only delays commits.
			c.mu.Lock()
			c.completions = map[string]*completionFSM{}
			c.mu.Unlock()
		}
	})
	if err := c.helixCtl.Start(); err != nil {
		return err
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.retentionLoop()
	return nil
}

// Stop halts the controller.
func (c *Controller) Stop() {
	if c.stop != nil {
		close(c.stop)
		<-c.done
		c.stop = nil
	}
	if c.helixCtl != nil {
		c.helixCtl.Stop()
	}
	c.closed.Store(true)
	if cn := c.conn.Load(); cn != nil {
		cn.sess.Close()
	}
}

// IsLeader reports whether this instance holds cluster mastership.
func (c *Controller) IsLeader() bool { return c.helixCtl.IsLeader() }

// Kick requests an immediate Helix rebalance pass.
func (c *Controller) Kick() { c.helixCtl.Kick() }

func (c *Controller) tableConfigPath(resource string) string {
	return helix.PropertyStorePath(c.cfg.Cluster, "CONFIGS", "TABLE", resource)
}

func (c *Controller) segmentsPath(resource string) string {
	return helix.PropertyStorePath(c.cfg.Cluster, "SEGMENTS", resource)
}

func (c *Controller) segmentMetaPath(resource, seg string) string {
	return c.segmentsPath(resource) + "/" + seg
}

// AddTable admits a table: stores its config, creates its (empty) ideal
// state and, for realtime tables, seeds the initial consuming segments.
func (c *Controller) AddTable(cfg *table.Config) error {
	if !c.IsLeader() {
		return ErrNotLeader
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	data, err := jsonMarshal(cfg)
	if err != nil {
		return err
	}
	resource := cfg.Resource()
	if err := c.session().Create(c.tableConfigPath(resource), data); err != nil {
		if err == zkmeta.ErrNodeExists {
			return fmt.Errorf("controller: table %s already exists", resource)
		}
		return err
	}
	if err := c.session().Create(c.segmentsPath(resource), nil); err != nil && err != zkmeta.ErrNodeExists {
		return err
	}
	is := &helix.IdealState{Resource: resource, NumReplicas: cfg.Replicas, Partitions: map[string]map[string]string{}}
	if cfg.Type == table.Realtime {
		if err := c.seedConsumingSegments(cfg, is); err != nil {
			return err
		}
	}
	if err := c.helixAdmin().SetIdealState(is); err != nil {
		return err
	}
	c.helixCtl.Kick()
	return nil
}

// UpdateTable replaces a table's stored config (schema evolution, index
// changes). The resource must exist.
func (c *Controller) UpdateTable(cfg *table.Config) error {
	if !c.IsLeader() {
		return ErrNotLeader
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	data, err := jsonMarshal(cfg)
	if err != nil {
		return err
	}
	if _, err := c.session().Set(c.tableConfigPath(cfg.Resource()), data, -1); err != nil {
		return fmt.Errorf("controller: update table %s: %w", cfg.Resource(), err)
	}
	return nil
}

// seedConsumingSegments creates the sequence-0 consuming segment per stream
// partition.
func (c *Controller) seedConsumingSegments(cfg *table.Config, is *helix.IdealState) error {
	topic, err := c.streams.Topic(cfg.StreamTopic)
	if err != nil {
		return fmt.Errorf("controller: table %s: %w", cfg.Name, err)
	}
	servers, err := c.eligibleServers(cfg)
	if err != nil {
		return err
	}
	if len(servers) == 0 {
		return fmt.Errorf("controller: no servers available for table %s", cfg.Name)
	}
	for p := 0; p < topic.NumPartitions(); p++ {
		segName := table.ConsumingSegmentName(cfg.Name, p, 0)
		startOffset, err := topic.LatestOffset(p)
		if err != nil {
			return err
		}
		meta := &table.SegmentMeta{
			Name:        segName,
			Resource:    cfg.Resource(),
			Status:      table.StatusInProgress,
			Partition:   p,
			StartOffset: startOffset,
			EndOffset:   -1,
		}
		if err := c.session().Create(c.segmentMetaPath(cfg.Resource(), segName), meta.Marshal()); err != nil {
			return err
		}
		replicas := pickReplicas(servers, is, cfg.Replicas, p)
		assignment := map[string]string{}
		for _, r := range replicas {
			assignment[r] = helix.StateConsuming
		}
		is.Partitions[segName] = assignment
	}
	return nil
}

// DeleteTable removes a table: its ideal state (dropping segments from
// servers), segment metadata and blobs, and config.
func (c *Controller) DeleteTable(name string, typ table.Type) error {
	if !c.IsLeader() {
		return ErrNotLeader
	}
	resource := table.ResourceName(name, typ)
	// Drop all segments first so servers unload.
	if err := c.helixAdmin().UpdateIdealState(resource, func(is *helix.IdealState) bool {
		for _, replicas := range is.Partitions {
			for inst := range replicas {
				replicas[inst] = helix.StateDropped
			}
		}
		return true
	}); err != nil && err != zkmeta.ErrNoNode {
		return err
	}
	c.helixCtl.Kick()
	segs, _ := c.session().Children(c.segmentsPath(resource))
	for _, s := range segs {
		data, _, err := c.session().Get(c.segmentMetaPath(resource, s))
		if err == nil {
			if meta, err := table.UnmarshalSegmentMeta(data); err == nil && meta.ObjectKey != "" {
				_ = c.objects.Delete(meta.ObjectKey)
			}
		}
		_ = c.session().Delete(c.segmentMetaPath(resource, s), -1)
	}
	_ = c.session().Delete(c.segmentsPath(resource), -1)
	if err := c.helixAdmin().DropResource(resource); err != nil {
		return err
	}
	if err := c.session().Delete(c.tableConfigPath(resource), -1); err != nil && err != zkmeta.ErrNoNode {
		return err
	}
	c.helixCtl.Kick()
	return nil
}

// TableConfig reads a table's config by resource name.
func (c *Controller) TableConfig(resource string) (*table.Config, error) {
	return ReadTableConfig(c.session(), c.cfg.Cluster, resource)
}

// Tables lists resources with a config.
func (c *Controller) Tables() ([]string, error) {
	return c.session().Children(helix.PropertyStorePath(c.cfg.Cluster, "CONFIGS", "TABLE"))
}

// SegmentMetas returns all segment metadata of a resource.
func (c *Controller) SegmentMetas(resource string) ([]*table.SegmentMeta, error) {
	return ReadSegmentMetas(c.session(), c.cfg.Cluster, resource)
}

// UploadSegment performs the data-upload flow of paper 3.3.5: unpack the
// blob to verify integrity, enforce the table quota, write segment metadata,
// then update the desired cluster state so servers load it. Re-uploading an
// existing segment name replaces it (updates and corrections, paper 3.1).
func (c *Controller) UploadSegment(resource string, blob []byte) error {
	if !c.IsLeader() {
		return ErrNotLeader
	}
	cfg, err := c.TableConfig(resource)
	if err != nil {
		return fmt.Errorf("controller: unknown table %s: %w", resource, err)
	}
	// Unpack to ensure integrity.
	seg, err := segment.Unmarshal(blob)
	if err != nil {
		return fmt.Errorf("controller: segment rejected: %w", err)
	}
	smeta := seg.Metadata()
	// Quota check.
	if cfg.QuotaBytes > 0 {
		existing, err := c.SegmentMetas(resource)
		if err != nil {
			return err
		}
		var total int64
		for _, m := range existing {
			if m.Name != seg.Name() {
				total += m.SizeBytes
			}
		}
		if total+int64(len(blob)) > cfg.QuotaBytes {
			return fmt.Errorf("controller: segment %s would put table %s over quota (%d + %d > %d bytes)",
				seg.Name(), resource, total, len(blob), cfg.QuotaBytes)
		}
	}
	crc := crc32Of(blob)
	key := table.SegmentObjectKey(resource, seg.Name(), crc)
	if err := c.objects.Put(key, blob); err != nil {
		return err
	}
	partition := -1
	if cfg.PartitionColumn != "" {
		partition = partitionOfSegment(seg, cfg)
	}
	meta := &table.SegmentMeta{
		Name:      seg.Name(),
		Resource:  resource,
		Status:    table.StatusDone,
		NumDocs:   seg.NumDocs(),
		SizeBytes: int64(len(blob)),
		MinTime:   smeta.MinTime,
		MaxTime:   smeta.MaxTime,
		ObjectKey: key,
		CRC:       crc,
		Partition: partition,
	}
	metaPath := c.segmentMetaPath(resource, seg.Name())
	replace := false
	if err := c.session().Create(metaPath, meta.Marshal()); err != nil {
		if err != zkmeta.ErrNodeExists {
			return err
		}
		replace = true
		if _, err := c.session().Set(metaPath, meta.Marshal(), -1); err != nil {
			return err
		}
	}
	if replace {
		return c.refreshSegment(resource, seg.Name())
	}
	servers, err := c.eligibleServers(cfg)
	if err != nil {
		return err
	}
	if len(servers) == 0 {
		return fmt.Errorf("controller: no servers available for table %s", resource)
	}
	err = c.helixAdmin().UpdateIdealState(resource, func(is *helix.IdealState) bool {
		replicas := pickReplicas(servers, is, cfg.Replicas, len(is.Partitions))
		assignment := map[string]string{}
		for _, r := range replicas {
			assignment[r] = helix.StateOnline
		}
		is.Partitions[seg.Name()] = assignment
		return true
	})
	if err != nil {
		return err
	}
	c.helixCtl.Kick()
	return nil
}

// refreshSegment bounces a replaced segment OFFLINE→ONLINE so servers
// reload the new blob.
func (c *Controller) refreshSegment(resource, segName string) error {
	var replicas map[string]string
	err := c.helixAdmin().UpdateIdealState(resource, func(is *helix.IdealState) bool {
		replicas = is.Partitions[segName]
		for inst := range replicas {
			replicas[inst] = helix.StateOffline
		}
		return true
	})
	if err != nil {
		return err
	}
	c.helixCtl.Kick()
	// Wait for servers to unload before flipping back online.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ev, err := c.helixAdmin().ExternalViewOf(resource)
		if err != nil {
			return err
		}
		if len(ev.InstancesFor(segName, helix.StateOnline)) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	err = c.helixAdmin().UpdateIdealState(resource, func(is *helix.IdealState) bool {
		for inst := range is.Partitions[segName] {
			is.Partitions[segName][inst] = helix.StateOnline
		}
		return true
	})
	if err != nil {
		return err
	}
	c.helixCtl.Kick()
	return nil
}

// DeleteSegment drops one segment from a table.
func (c *Controller) DeleteSegment(resource, segName string) error {
	if !c.IsLeader() {
		return ErrNotLeader
	}
	err := c.helixAdmin().UpdateIdealState(resource, func(is *helix.IdealState) bool {
		replicas, ok := is.Partitions[segName]
		if !ok {
			return false
		}
		for inst := range replicas {
			replicas[inst] = helix.StateDropped
		}
		return true
	})
	if err != nil {
		return err
	}
	c.helixCtl.Kick()
	data, _, err := c.session().Get(c.segmentMetaPath(resource, segName))
	if err == nil {
		if meta, err := table.UnmarshalSegmentMeta(data); err == nil && meta.ObjectKey != "" {
			_ = c.objects.Delete(meta.ObjectKey)
		}
	}
	if err := c.session().Delete(c.segmentMetaPath(resource, segName), -1); err != nil && err != zkmeta.ErrNoNode {
		return err
	}
	// Remove from ideal state after servers drop.
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			ev, err := c.helixAdmin().ExternalViewOf(resource)
			if err != nil || len(ev.Partitions[segName]) == 0 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		_ = c.helixAdmin().UpdateIdealState(resource, func(is *helix.IdealState) bool {
			if _, ok := is.Partitions[segName]; !ok {
				return false
			}
			delete(is.Partitions, segName)
			return true
		})
		c.helixCtl.Kick()
	}()
	return nil
}

// eligibleServers returns server instances allowed to host the table,
// honouring its tenant tag.
func (c *Controller) eligibleServers(cfg *table.Config) ([]string, error) {
	configs, err := c.helixAdmin().Instances()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, ic := range configs {
		if !ic.HasTag("server") {
			continue
		}
		if cfg.ServerTenant != "" && !ic.HasTag(cfg.ServerTenant) {
			continue
		}
		out = append(out, ic.Instance)
	}
	sort.Strings(out)
	return out, nil
}

// pickReplicas chooses `replicas` servers balancing the per-server segment
// counts of the ideal state; `salt` rotates ties so equal-load servers share
// work.
func pickReplicas(servers []string, is *helix.IdealState, replicas, salt int) []string {
	if replicas > len(servers) {
		replicas = len(servers)
	}
	load := map[string]int{}
	for _, assignment := range is.Partitions {
		for inst := range assignment {
			load[inst]++
		}
	}
	ranked := append([]string(nil), servers...)
	sort.SliceStable(ranked, func(i, j int) bool {
		li, lj := load[ranked[i]], load[ranked[j]]
		if li != lj {
			return li < lj
		}
		// Tie-break by rotating with the salt.
		ii := (indexOf(servers, ranked[i]) + salt) % len(servers)
		jj := (indexOf(servers, ranked[j]) + salt) % len(servers)
		return ii < jj
	})
	return ranked[:replicas]
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// partitionOfSegment derives the partition id of an uploaded segment from
// its partition-column values; -1 if the segment spans partitions.
func partitionOfSegment(seg *segment.Segment, cfg *table.Config) int {
	col := seg.Column(cfg.PartitionColumn)
	if col == nil || !col.HasDictionary() {
		return -1
	}
	partition := -1
	for id := 0; id < col.Cardinality(); id++ {
		p := stream.PartitionFor(valueKey(col.Value(id)), cfg.NumPartitions)
		if partition == -1 {
			partition = p
		} else if partition != p {
			return -1
		}
	}
	return partition
}

// valueKey renders a partition-column value exactly as producers key their
// stream messages.
func valueKey(v any) []byte {
	return []byte(fmt.Sprint(v))
}

// ReadTableConfig loads a table config from the property store; shared with
// servers and brokers.
func ReadTableConfig(sess zkmeta.Client, cluster, resource string) (*table.Config, error) {
	data, _, err := sess.Get(helix.PropertyStorePath(cluster, "CONFIGS", "TABLE", resource))
	if err != nil {
		return nil, err
	}
	return unmarshalTableConfig(data)
}

// ReadSegmentMetas loads all segment metadata of a resource.
func ReadSegmentMetas(sess zkmeta.Client, cluster, resource string) ([]*table.SegmentMeta, error) {
	base := helix.PropertyStorePath(cluster, "SEGMENTS", resource)
	names, err := sess.Children(base)
	if err != nil {
		if err == zkmeta.ErrNoNode {
			return nil, nil
		}
		return nil, err
	}
	out := make([]*table.SegmentMeta, 0, len(names))
	for _, n := range names {
		data, _, err := sess.Get(base + "/" + n)
		if err != nil {
			continue
		}
		m, err := table.UnmarshalSegmentMeta(data)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ReadSegmentMeta loads one segment's metadata.
func ReadSegmentMeta(sess zkmeta.Client, cluster, resource, segName string) (*table.SegmentMeta, error) {
	data, _, err := sess.Get(helix.PropertyStorePath(cluster, "SEGMENTS", resource) + "/" + segName)
	if err != nil {
		return nil, err
	}
	return table.UnmarshalSegmentMeta(data)
}

// retentionLoop periodically runs leader maintenance: retention GC (paper
// 3.2) and replica repair after server loss (paper 3.4).
func (c *Controller) retentionLoop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.RetentionInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			if c.IsLeader() {
				c.RunRetention()
				c.RunReplicaRepair()
			}
		}
	}
}

// RunRetention performs one retention sweep across all tables. The horizon
// is data-driven: segments whose MaxTime falls more than RetentionUnits
// behind the table's newest data expire.
func (c *Controller) RunRetention() {
	resources, err := c.Tables()
	if err != nil {
		return
	}
	for _, resource := range resources {
		cfg, err := c.TableConfig(resource)
		if err != nil || cfg.RetentionUnits <= 0 {
			continue
		}
		metas, err := c.SegmentMetas(resource)
		if err != nil {
			continue
		}
		var newest int64
		hasData := false
		for _, m := range metas {
			if m.Status == table.StatusDone && m.MaxTime > newest {
				newest = m.MaxTime
				hasData = true
			}
		}
		if !hasData {
			continue
		}
		horizon := newest - cfg.RetentionUnits
		for _, m := range metas {
			if m.Status == table.StatusDone && m.MaxTime < horizon {
				_ = c.DeleteSegment(resource, m.Name)
			}
		}
	}
}

var _ transport.ControllerClient = (*Controller)(nil)
