package controller

import (
	"pinot/internal/helix"
	"pinot/internal/table"
)

// RunReplicaRepair restores replication after server loss (paper 3.2:
// controllers "trigger changes ... in response to the changes in server
// availability"; 3.4: "any node can be removed at any time and replaced by
// a blank one without any issues"). For every segment whose live replica
// count fell below the table's replication factor, assignments on dead
// instances move to eligible live servers: offline segments re-download
// from the object store, consuming segments restart from their start offset
// and converge through the completion protocol.
func (c *Controller) RunReplicaRepair() {
	if !c.IsLeader() {
		return
	}
	live, err := c.helixAdmin().LiveInstances()
	if err != nil {
		return
	}
	liveSet := make(map[string]bool, len(live))
	for _, l := range live {
		liveSet[l] = true
	}
	resources, err := c.Tables()
	if err != nil {
		return
	}
	for _, resource := range resources {
		cfg, err := c.TableConfig(resource)
		if err != nil {
			continue
		}
		servers, err := c.eligibleServers(cfg)
		if err != nil {
			continue
		}
		var liveServers []string
		for _, s := range servers {
			if liveSet[s] {
				liveServers = append(liveServers, s)
			}
		}
		if len(liveServers) == 0 {
			continue
		}
		changed := false
		err = c.helixAdmin().UpdateIdealState(resource, func(is *helix.IdealState) bool {
			changed = repairIdealState(is, liveSet, liveServers, cfg)
			return changed
		})
		if err == nil && changed {
			c.helixCtl.Kick()
		}
	}
}

// repairIdealState moves dead-instance assignments to live servers,
// returning whether anything changed.
func repairIdealState(is *helix.IdealState, live map[string]bool, liveServers []string, cfg *table.Config) bool {
	changed := false
	for _, replicas := range is.Partitions {
		var deadInstances []string
		for inst := range replicas {
			if !live[inst] {
				deadInstances = append(deadInstances, inst)
			}
		}
		if len(deadInstances) == 0 {
			continue
		}
		for _, dead := range deadInstances {
			state := replicas[dead]
			if state == helix.StateDropped {
				// A dying replica of a segment being deleted: just
				// forget the assignment.
				delete(replicas, dead)
				changed = true
				continue
			}
			// Pick a live replacement not already serving the segment.
			candidates := make([]string, 0, len(liveServers))
			for _, s := range liveServers {
				if _, serving := replicas[s]; !serving {
					candidates = append(candidates, s)
				}
			}
			if len(candidates) == 0 {
				continue // nowhere to move it; keep the assignment for a comeback
			}
			replacement := pickReplicas(candidates, is, 1, len(replicas))[0]
			delete(replicas, dead)
			// A replica that was mid-consumption restarts consuming;
			// completed segments come back ONLINE from the object
			// store.
			replicas[replacement] = state
			changed = true
		}
	}
	return changed
}
