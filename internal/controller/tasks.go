package controller

import (
	"encoding/json"
	"fmt"

	"pinot/internal/helix"
	"pinot/internal/zkmeta"
)

// TaskType identifies a minion job kind. The scheduling framework is
// extensible (paper 3.2: "task management and scheduling is extensible to
// add new job and schedule types").
type TaskType string

// Built-in task types.
const (
	// TaskPurge rewrites a segment with records matching a predicate
	// expunged — the GDPR-style purge job of paper 3.2.
	TaskPurge TaskType = "purge"
	// TaskReindex rewrites a segment applying the table's current index
	// configuration (new inverted indexes, sort column, star-tree).
	TaskReindex TaskType = "reindex"
)

// TaskStatus tracks a task through its lifecycle.
type TaskStatus string

// Task statuses.
const (
	TaskPending   TaskStatus = "PENDING"
	TaskRunning   TaskStatus = "RUNNING"
	TaskCompleted TaskStatus = "COMPLETED"
	TaskFailed    TaskStatus = "FAILED"
)

// Task is one unit of minion work.
type Task struct {
	ID       string     `json:"id"`
	Type     TaskType   `json:"type"`
	Resource string     `json:"resource"`
	Segment  string     `json:"segment"`
	Status   TaskStatus `json:"status"`
	Owner    string     `json:"owner,omitempty"`
	Error    string     `json:"error,omitempty"`
	// PurgeColumn/PurgeValues select the records to expunge (purge
	// tasks): rows whose column equals any value are removed.
	PurgeColumn string   `json:"purgeColumn,omitempty"`
	PurgeValues []string `json:"purgeValues,omitempty"`
}

func (c *Controller) taskPath(id string) string {
	return helix.PropertyStorePath(c.cfg.Cluster, "TASKS", id)
}

// ScheduleTask enqueues a minion task.
func (c *Controller) ScheduleTask(t *Task) error {
	if !c.IsLeader() {
		return ErrNotLeader
	}
	if t.ID == "" || t.Resource == "" || t.Segment == "" {
		return fmt.Errorf("controller: task needs id, resource and segment")
	}
	t.Status = TaskPending
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	if err := c.session().Create(c.taskPath(t.ID), data); err != nil {
		if err == zkmeta.ErrNodeExists {
			return fmt.Errorf("controller: task %s already exists", t.ID)
		}
		return err
	}
	return nil
}

// Tasks lists all tasks.
func (c *Controller) Tasks() ([]*Task, error) {
	ids, err := c.session().Children(helix.PropertyStorePath(c.cfg.Cluster, "TASKS"))
	if err != nil {
		return nil, err
	}
	out := make([]*Task, 0, len(ids))
	for _, id := range ids {
		data, _, err := c.session().Get(c.taskPath(id))
		if err != nil {
			continue
		}
		var t Task
		if err := json.Unmarshal(data, &t); err != nil {
			return nil, err
		}
		out = append(out, &t)
	}
	return out, nil
}

// ClaimTask atomically assigns a pending task to a minion. It returns nil
// when no work is available.
func (c *Controller) ClaimTask(minion string) (*Task, error) {
	ids, err := c.session().Children(helix.PropertyStorePath(c.cfg.Cluster, "TASKS"))
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		for {
			data, version, err := c.session().Get(c.taskPath(id))
			if err != nil {
				break
			}
			var t Task
			if err := json.Unmarshal(data, &t); err != nil {
				break
			}
			if t.Status != TaskPending {
				break
			}
			t.Status = TaskRunning
			t.Owner = minion
			out, err := json.Marshal(&t)
			if err != nil {
				return nil, err
			}
			if _, err := c.session().Set(c.taskPath(id), out, version); err == nil {
				return &t, nil
			} else if err != zkmeta.ErrBadVersion {
				return nil, err
			}
			// Lost the race: re-read and retry or move on.
		}
	}
	return nil, nil
}

// CompleteTask records a task outcome.
func (c *Controller) CompleteTask(id string, taskErr error) error {
	data, version, err := c.session().Get(c.taskPath(id))
	if err != nil {
		return err
	}
	var t Task
	if err := json.Unmarshal(data, &t); err != nil {
		return err
	}
	if taskErr != nil {
		t.Status = TaskFailed
		t.Error = taskErr.Error()
	} else {
		t.Status = TaskCompleted
	}
	out, err := json.Marshal(&t)
	if err != nil {
		return err
	}
	_, err = c.session().Set(c.taskPath(id), out, version)
	return err
}

// FetchSegmentBlob downloads a segment's current blob for rewriting.
func (c *Controller) FetchSegmentBlob(resource, segName string) ([]byte, error) {
	meta, err := ReadSegmentMeta(c.session(), c.cfg.Cluster, resource, segName)
	if err != nil {
		return nil, err
	}
	if meta.ObjectKey == "" {
		return nil, fmt.Errorf("controller: segment %s/%s has no durable blob", resource, segName)
	}
	return c.objects.Get(meta.ObjectKey)
}
