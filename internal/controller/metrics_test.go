package controller

import (
	"context"
	"testing"
	"time"

	"pinot/internal/helix"
	"pinot/internal/metrics"
	"pinot/internal/objstore"
	"pinot/internal/stream"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

// TestCompletionVerdictCountersMatchTranscript drives a known
// completion-protocol transcript through two real controllers sharing one
// registry and pins every verdict counter to the exact transcript: the
// metrics must be a faithful ledger of the protocol, not an approximation.
func TestCompletionVerdictCountersMatchTranscript(t *testing.T) {
	reg := metrics.NewRegistry()
	store := zkmeta.NewStore()
	objects := objstore.NewMem()
	streams := stream.NewCluster()

	cfg := func(instance string) Config {
		return Config{
			Cluster:  "verdicts",
			Instance: instance,
			// A window far beyond the test keeps the FSM purely
			// poll-count-driven: no timer can flip HOLD into COMMIT.
			CompletionWindow: time.Hour,
			Metrics:          reg,
		}
	}
	c1 := New(cfg("ctrlA"), store, objects, streams)
	c2 := New(cfg("ctrlB"), store, objects, streams)
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	defer c1.Stop()
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()

	var leader, follower *Controller
	deadline := time.Now().Add(5 * time.Second)
	for leader == nil && time.Now().Before(deadline) {
		switch {
		case c1.IsLeader():
			leader, follower = c1, c2
		case c2.IsLeader():
			leader, follower = c2, c1
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	if leader == nil {
		t.Fatal("no controller became leader")
	}

	// Two CONSUMING replicas so the FSM expects two polls before acting.
	const resource, seg = "rt_REALTIME", "rt__0__0"
	err := leader.helixAdmin().SetIdealState(&helix.IdealState{
		Resource:    resource,
		NumReplicas: 2,
		Partitions: map[string]map[string]string{
			seg: {"server1": helix.StateConsuming, "server2": helix.StateConsuming},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	poll := func(c *Controller, instance string, offset int64) transport.SegmentConsumedAction {
		t.Helper()
		resp, err := c.SegmentConsumed(context.Background(), &transport.SegmentConsumedRequest{
			Segment: seg, Resource: resource, Instance: instance, Offset: offset,
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Action
	}

	// The transcript. Each step's expected action is asserted inline so a
	// protocol change fails here, not in the counter comparison below.
	if got := poll(follower, "server1", 50); got != transport.ActionNotLeader {
		t.Fatalf("follower poll: %s, want NOTLEADER", got)
	}
	if got := poll(leader, "server1", 50); got != transport.ActionHold {
		t.Fatalf("first poll: %s, want HOLD", got)
	}
	if got := poll(leader, "server2", 100); got != transport.ActionCommit {
		t.Fatalf("second poll at max: %s, want COMMIT", got)
	}
	if got := poll(leader, "server1", 50); got != transport.ActionCatchup {
		t.Fatalf("behind replica: %s, want CATCHUP", got)
	}
	if got := poll(leader, "server1", 100); got != transport.ActionHold {
		t.Fatalf("caught-up replica: %s, want HOLD", got)
	}

	// The counters must match the transcript exactly — per instance, per
	// action, including the zero rows.
	const name = "pinot_controller_completion_verdicts_total"
	want := map[string]map[transport.SegmentConsumedAction]int64{
		leader.Instance(): {
			transport.ActionHold:      2,
			transport.ActionCatchup:   1,
			transport.ActionCommit:    1,
			transport.ActionKeep:      0,
			transport.ActionDiscard:   0,
			transport.ActionNotLeader: 0,
		},
		follower.Instance(): {
			transport.ActionHold:      0,
			transport.ActionCatchup:   0,
			transport.ActionCommit:    0,
			transport.ActionKeep:      0,
			transport.ActionDiscard:   0,
			transport.ActionNotLeader: 1,
		},
	}
	for instance, actions := range want {
		for action, n := range actions {
			if got := reg.Value(name, instance, string(action)); got != n {
				t.Errorf("%s{instance=%q,action=%q} = %d, want %d", name, instance, action, got, n)
			}
		}
	}
	if got := reg.Total(name); got != 5 {
		t.Errorf("total verdicts = %d, want 5", got)
	}
}
