package controller

import (
	"testing"
	"time"

	"pinot/internal/helix"
	"pinot/internal/transport"
)

// The FSM is exercised here in isolation; the full replica protocol runs in
// the cluster integration tests.

func TestFSMAllReplicasAgree(t *testing.T) {
	now := time.Unix(0, 0)
	f := newCompletionFSM("r", "s", 3, time.Second)
	// First two replicas poll at the same offset: HOLD until all report.
	if resp := f.onPoll("a", 100, now); resp.Action != transport.ActionHold {
		t.Fatalf("a: %+v", resp)
	}
	if resp := f.onPoll("b", 100, now); resp.Action != transport.ActionHold {
		t.Fatalf("b: %+v", resp)
	}
	// Third replica completes the set and, being at max offset, commits.
	if resp := f.onPoll("c", 100, now); resp.Action != transport.ActionCommit {
		t.Fatalf("c: %+v", resp)
	}
	// The others hold while the committer works.
	if resp := f.onPoll("a", 100, now); resp.Action != transport.ActionHold {
		t.Fatalf("a while committing: %+v", resp)
	}
	// Commit lands.
	f.state = committed
	f.committedOffset = 100
	if resp := f.onPoll("a", 100, now); resp.Action != transport.ActionKeep {
		t.Fatalf("a post-commit: %+v", resp)
	}
	if resp := f.onPoll("b", 99, now); resp.Action != transport.ActionDiscard {
		t.Fatalf("b post-commit: %+v", resp)
	}
}

func TestFSMCatchup(t *testing.T) {
	now := time.Unix(0, 0)
	f := newCompletionFSM("r", "s", 2, time.Second)
	if resp := f.onPoll("a", 80, now); resp.Action != transport.ActionHold {
		t.Fatalf("a: %+v", resp)
	}
	// b polls at a higher offset: a must catch up to 120 before anyone
	// commits; b (at max) becomes committer.
	if resp := f.onPoll("b", 120, now); resp.Action != transport.ActionCommit {
		t.Fatalf("b: %+v", resp)
	}
	resp := f.onPoll("a", 80, now)
	if resp.Action != transport.ActionCatchup || resp.TargetOffset != 120 {
		t.Fatalf("a catchup: %+v", resp)
	}
	// After catching up, a holds.
	if resp := f.onPoll("a", 120, now); resp.Action != transport.ActionHold {
		t.Fatalf("a caught up: %+v", resp)
	}
}

func TestFSMWindowExpiryWithMissingReplica(t *testing.T) {
	start := time.Unix(0, 0)
	f := newCompletionFSM("r", "s", 3, 100*time.Millisecond)
	if resp := f.onPoll("a", 50, start); resp.Action != transport.ActionHold {
		t.Fatalf("a: %+v", resp)
	}
	// The third replica never shows up; after the window the first
	// caught-up poller commits.
	later := start.Add(200 * time.Millisecond)
	if resp := f.onPoll("a", 50, later); resp.Action != transport.ActionCommit {
		t.Fatalf("a after window: %+v", resp)
	}
}

func TestFSMCommitterFailover(t *testing.T) {
	start := time.Unix(0, 0)
	f := newCompletionFSM("r", "s", 2, 100*time.Millisecond)
	f.onPoll("a", 10, start)
	if resp := f.onPoll("b", 10, start); resp.Action != transport.ActionCommit {
		t.Fatal("b should commit")
	}
	// b dies. a polls within the grace period: HOLD.
	if resp := f.onPoll("a", 10, start.Add(50*time.Millisecond)); resp.Action != transport.ActionHold {
		t.Fatalf("a within grace: %+v", resp)
	}
	// After the grace period a is promoted to committer.
	if resp := f.onPoll("a", 10, start.Add(300*time.Millisecond)); resp.Action != transport.ActionCommit {
		t.Fatalf("a after grace: %+v", resp)
	}
	if f.committer != "a" {
		t.Fatalf("committer = %s", f.committer)
	}
}

func TestFSMLateHigherOffsetRegathers(t *testing.T) {
	start := time.Unix(0, 0)
	f := newCompletionFSM("r", "s", 3, 50*time.Millisecond)
	f.onPoll("a", 10, start)
	// Window expires with only a and b; b commits at offset 10.
	if resp := f.onPoll("b", 10, start.Add(100*time.Millisecond)); resp.Action != transport.ActionCommit {
		t.Fatal("b should commit")
	}
	// c arrives late with MORE data: the committer designation is stale.
	resp := f.onPoll("c", 25, start.Add(120*time.Millisecond))
	if resp.Action == transport.ActionKeep || resp.Action == transport.ActionDiscard {
		t.Fatalf("c: %+v", resp)
	}
	// b now has to catch up to 25.
	resp = f.onPoll("b", 10, start.Add(130*time.Millisecond))
	if resp.Action != transport.ActionCatchup || resp.TargetOffset != 25 {
		t.Fatalf("b re-gathered: %+v", resp)
	}
}

func TestPickReplicasBalances(t *testing.T) {
	servers := []string{"s1", "s2", "s3", "s4"}
	is := &helix.IdealState{Partitions: map[string]map[string]string{}}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		picked := pickReplicas(servers, is, 2, i)
		if len(picked) != 2 {
			t.Fatalf("picked %v", picked)
		}
		assignment := map[string]string{}
		for _, p := range picked {
			counts[p]++
			assignment[p] = "ONLINE"
		}
		is.Partitions[string(rune('a'+i))] = assignment
	}
	for s, n := range counts {
		if n < 15 || n > 25 {
			t.Fatalf("server %s got %d of 80 assignments", s, n)
		}
	}
	// Replicas never exceed the server count.
	if got := pickReplicas([]string{"only"}, is, 3, 0); len(got) != 1 {
		t.Fatalf("overprovisioned replicas: %v", got)
	}
}
