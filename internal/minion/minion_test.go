package minion

import (
	"strings"
	"testing"

	"pinot/internal/controller"
	"pinot/internal/segment"
	"pinot/internal/startree"
	"pinot/internal/table"
)

func testSegment(t *testing.T) (*segment.Segment, *table.Config) {
	t.Helper()
	sch, err := segment.NewSchema("ev", []segment.FieldSpec{
		{Name: "memberId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := segment.NewBuilder("ev", "ev_0", sch, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.Add(segment.Row{int64(i % 10), []string{"us", "de"}[i%2], int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := &table.Config{Name: "ev", Type: table.Offline, Schema: sch, Replicas: 1}
	return seg, cfg
}

func TestRewritePurge(t *testing.T) {
	seg, cfg := testSegment(t)
	task := &controller.Task{
		ID: "t1", Type: controller.TaskPurge,
		Resource: "ev_OFFLINE", Segment: "ev_0",
		PurgeColumn: "memberId", PurgeValues: []string{"3", "7"},
	}
	blob, err := RewriteSegment(seg, cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	out, err := segment.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDocs() != 80 {
		t.Fatalf("docs after purge = %d, want 80", out.NumDocs())
	}
	col := out.Column("memberId")
	for doc := 0; doc < out.NumDocs(); doc++ {
		v := col.Value(col.DictID(doc)).(int64)
		if v == 3 || v == 7 {
			t.Fatalf("purged member %d survived", v)
		}
	}
}

func TestRewritePurgeValidation(t *testing.T) {
	seg, cfg := testSegment(t)
	if _, err := RewriteSegment(seg, cfg, &controller.Task{ID: "t", Type: controller.TaskPurge, Resource: "r", Segment: "s"}); err == nil {
		t.Fatal("missing purge column accepted")
	}
	if _, err := RewriteSegment(seg, cfg, &controller.Task{ID: "t", Type: controller.TaskPurge, Resource: "r", Segment: "s", PurgeColumn: "nope"}); err == nil {
		t.Fatal("unknown purge column accepted")
	}
	// Purging everything must refuse (delete the segment instead).
	all := &controller.Task{ID: "t", Type: controller.TaskPurge, Resource: "r", Segment: "s",
		PurgeColumn: "country", PurgeValues: []string{"us", "de"}}
	if _, err := RewriteSegment(seg, cfg, all); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("emptying purge: %v", err)
	}
	if _, err := RewriteSegment(seg, cfg, &controller.Task{ID: "t", Type: "bogus"}); err == nil {
		t.Skip("unknown types are checked in execute, not RewriteSegment")
	}
}

func TestRewriteReindexAppliesTableIndexes(t *testing.T) {
	seg, cfg := testSegment(t)
	cfg.SortColumn = "memberId"
	cfg.InvertedColumns = []string{"country"}
	cfg.StarTree = &startree.Config{
		DimensionSplitOrder: []string{"country", "memberId"},
		Metrics:             []string{"clicks"},
		MaxLeafRecords:      4,
	}
	blob, err := RewriteSegment(seg, cfg, &controller.Task{
		ID: "t2", Type: controller.TaskReindex, Resource: "ev_OFFLINE", Segment: "ev_0",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := segment.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDocs() != 100 {
		t.Fatalf("reindex changed doc count: %d", out.NumDocs())
	}
	if !out.SortedOn("memberId") {
		t.Fatal("sort column not applied")
	}
	if !out.Column("country").HasInverted() {
		t.Fatal("inverted index not applied")
	}
	tree, err := startree.Unmarshal(out.StarTreeData())
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumRawDocs() != 100 {
		t.Fatalf("star tree raw docs = %d", tree.NumRawDocs())
	}
}
