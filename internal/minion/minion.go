// Package minion implements Pinot minions (paper 3.2): workers that run
// compute-intensive maintenance tasks scheduled by the controller. The
// built-in tasks mirror the paper's example: purge jobs download a segment,
// expunge unwanted records, rewrite and reindex the segment, and upload it
// back, replacing the previous version.
package minion

import (
	"fmt"
	"sync"
	"time"

	"pinot/internal/controller"
	"pinot/internal/metrics"
	"pinot/internal/segment"
	"pinot/internal/startree"
	"pinot/internal/table"
)

// ControllerAPI is the minion's view of the lead controller.
type ControllerAPI interface {
	IsLeader() bool
	ClaimTask(minion string) (*controller.Task, error)
	CompleteTask(id string, taskErr error) error
	FetchSegmentBlob(resource, segment string) ([]byte, error)
	TableConfig(resource string) (*table.Config, error)
	UploadSegment(resource string, blob []byte) error
}

// Config tunes a minion worker.
type Config struct {
	Instance     string
	PollInterval time.Duration
	// Metrics receives the minion's instrumentation; nil means the
	// process-wide metrics.Default().
	Metrics *metrics.Registry
}

// Minion polls the lead controller for tasks and executes them.
type Minion struct {
	cfg         Config
	controllers func() []ControllerAPI

	stop chan struct{}
	done chan struct{}

	mu        sync.Mutex
	completed int
	failed    int

	tasks *metrics.Family // labels: instance, type, result
}

// New creates a minion. controllers resolves the candidate controllers; the
// current leader is used.
func New(cfg Config, controllers func() []ControllerAPI) *Minion {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	tasks := reg.Counter("pinot_minion_tasks_total",
		"Minion tasks executed, by type and result.", "instance", "type", "result")
	return &Minion{cfg: cfg, controllers: controllers, tasks: tasks}
}

// Start begins the task-polling loop.
func (m *Minion) Start() {
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.cfg.PollInterval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.poll()
			}
		}
	}()
}

// Stop halts the minion.
func (m *Minion) Stop() {
	if m.stop != nil {
		close(m.stop)
		<-m.done
		m.stop = nil
	}
}

// Counters reports how many tasks completed and failed.
func (m *Minion) Counters() (completed, failed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.completed, m.failed
}

func (m *Minion) leader() (ControllerAPI, bool) {
	for _, c := range m.controllers() {
		if c.IsLeader() {
			return c, true
		}
	}
	return nil, false
}

func (m *Minion) poll() {
	ctrl, ok := m.leader()
	if !ok {
		return
	}
	task, err := ctrl.ClaimTask(m.cfg.Instance)
	if err != nil || task == nil {
		return
	}
	err = m.execute(ctrl, task)
	_ = ctrl.CompleteTask(task.ID, err)
	result := "ok"
	m.mu.Lock()
	if err != nil {
		m.failed++
		result = "fail"
	} else {
		m.completed++
	}
	m.mu.Unlock()
	m.tasks.With(m.cfg.Instance, string(task.Type), result).Inc()
}

// execute runs one task: download, rewrite, re-upload.
func (m *Minion) execute(ctrl ControllerAPI, t *controller.Task) error {
	switch t.Type {
	case controller.TaskPurge, controller.TaskReindex:
	default:
		return fmt.Errorf("minion: unknown task type %q", t.Type)
	}
	blob, err := ctrl.FetchSegmentBlob(t.Resource, t.Segment)
	if err != nil {
		return err
	}
	seg, err := segment.Unmarshal(blob)
	if err != nil {
		return err
	}
	cfg, err := ctrl.TableConfig(t.Resource)
	if err != nil {
		return err
	}
	newBlob, err := RewriteSegment(seg, cfg, t)
	if err != nil {
		return err
	}
	return ctrl.UploadSegment(t.Resource, newBlob)
}

// RewriteSegment rebuilds a segment applying a task's record filter (purge)
// and the table's current index configuration (reindex), returning the new
// blob.
func RewriteSegment(seg *segment.Segment, cfg *table.Config, t *controller.Task) ([]byte, error) {
	keep := func(doc int) bool { return true }
	if t.Type == controller.TaskPurge {
		if t.PurgeColumn == "" {
			return nil, fmt.Errorf("minion: purge task %s has no purge column", t.ID)
		}
		col := seg.Column(t.PurgeColumn)
		if col == nil {
			return nil, fmt.Errorf("minion: purge column %q not in segment", t.PurgeColumn)
		}
		purge := make(map[string]bool, len(t.PurgeValues))
		for _, v := range t.PurgeValues {
			purge[v] = true
		}
		spec := col.Spec()
		keep = func(doc int) bool {
			if spec.SingleValue {
				return !purge[fmt.Sprint(col.Value(col.DictID(doc)))]
			}
			var buf []int
			for _, id := range col.DictIDsMV(doc, buf) {
				if purge[fmt.Sprint(col.Value(id))] {
					return false
				}
			}
			return true
		}
	}
	b, err := segment.NewBuilder(cfg.Name, seg.Name(), seg.Schema(), cfg.IndexConfig())
	if err != nil {
		return nil, err
	}
	kept := 0
	for doc := 0; doc < seg.NumDocs(); doc++ {
		if !keep(doc) {
			continue
		}
		if err := b.Add(segment.ReadRow(seg, doc)); err != nil {
			return nil, err
		}
		kept++
	}
	if kept == 0 {
		return nil, fmt.Errorf("minion: purge would empty segment %s; delete it instead", seg.Name())
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	if cfg.StarTree != nil {
		tree, err := startree.Build(out, *cfg.StarTree)
		if err != nil {
			return nil, err
		}
		data, err := tree.Marshal()
		if err != nil {
			return nil, err
		}
		out.SetStarTreeData(data)
	}
	return out.Marshal()
}
