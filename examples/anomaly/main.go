// Anomaly dashboard: the star-tree scenario from paper sections 4.3 and 6.
// Dashboard queries aggregate business metrics with a few predicates and
// group-bys; a star-tree index answers them from pre-aggregated records,
// scanning a small fraction of the raw documents (Figure 13). Queries the
// tree cannot answer transparently fall back to raw execution.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pinot"
	"pinot/internal/workload"
)

func main() {
	c, err := pinot.NewCluster(pinot.ClusterOptions{Servers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	d := workload.Anomaly(workload.SizeConfig{Segments: 2, RowsPerSegment: 50000, Seed: 7})
	schema, err := pinot.NewSchema("anomaly", d.Schema.Fields)
	if err != nil {
		log.Fatal(err)
	}
	st := &pinot.StarTreeConfig{
		DimensionSplitOrder: d.StarTree.DimensionSplitOrder,
		Metrics:             d.StarTree.Metrics,
		MaxLeafRecords:      d.StarTree.MaxLeafRecords,
	}
	err = c.AddTable(&pinot.TableConfig{
		Name: "anomaly", Type: pinot.Offline, Schema: schema, Replicas: 1, StarTree: st,
	})
	if err != nil {
		log.Fatal(err)
	}
	for si := 0; si < d.NumSegments; si++ {
		blob, err := pinot.BuildSegmentBlob("anomaly", fmt.Sprintf("anomaly_%d", si),
			schema, pinot.IndexConfig{}, d.Rows(si), st)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.UploadSegment("anomaly_OFFLINE", blob); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.WaitForOnline("anomaly_OFFLINE", d.NumSegments, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Paper Figure 9 shape: single predicate aggregation.
		"SELECT sum(value) FROM anomaly WHERE browser = 'firefox'",
		// Paper Figure 10 shape: OR predicate + group-by.
		"SELECT sum(value) FROM anomaly WHERE browser = 'firefox' OR browser = 'safari' GROUP BY country TOP 5",
		// Dashboard drill-down.
		"SELECT sum(value), count(*) FROM anomaly WHERE metricName = 'metric01' AND day BETWEEN 16005 AND 16011 GROUP BY platform TOP 10",
		// MIN is not pre-aggregated: transparent fallback to raw scan.
		"SELECT min(value) FROM anomaly WHERE browser = 'firefox'",
	}
	for _, q := range queries {
		res, err := c.Query(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n> %s\n", q)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
		if res.Stats.StarTreeSegments > 0 {
			ratio := float64(res.Stats.StarTreeRecordsScanned) / float64(res.Stats.StarTreeRawDocs)
			fmt.Printf("  star-tree: scanned %d pre-aggregated records vs %d raw docs (ratio %.4f)\n",
				res.Stats.StarTreeRecordsScanned, res.Stats.StarTreeRawDocs, ratio)
		} else {
			fmt.Printf("  raw execution: %d docs scanned\n", res.Stats.NumDocsScanned)
		}
	}
}
