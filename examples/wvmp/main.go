// WVMP: the "Who Viewed My Profile" scenario from the paper (sections 4.2
// and 6). Every query filters on the vieweeId column, so the table is
// physically sorted on it: a member's profile views form a contiguous doc
// range and queries touch only that range instead of scanning or running
// bitmap operations. This example contrasts the sorted layout with an
// inverted-index layout on the same data.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pinot"
	"pinot/internal/workload"
)

func main() {
	c, err := pinot.NewCluster(pinot.ClusterOptions{Servers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	d := workload.WVMP(workload.SizeConfig{Segments: 2, RowsPerSegment: 50000, Seed: 42})

	// Two tables over identical data: one physically sorted on vieweeId,
	// one relying on an inverted index.
	for _, layout := range []struct {
		name string
		idx  pinot.IndexConfig
	}{
		{"wvmpsorted", pinot.IndexConfig{SortColumn: "vieweeId"}},
		{"wvmpinverted", pinot.IndexConfig{InvertedColumns: []string{"vieweeId"}}},
	} {
		schema, err := pinot.NewSchema(layout.name, d.Schema.Fields)
		if err != nil {
			log.Fatal(err)
		}
		err = c.AddTable(&pinot.TableConfig{
			Name: layout.name, Type: pinot.Offline, Schema: schema, Replicas: 1,
			SortColumn: layout.idx.SortColumn, InvertedColumns: layout.idx.InvertedColumns,
		})
		if err != nil {
			log.Fatal(err)
		}
		for si := 0; si < d.NumSegments; si++ {
			blob, err := pinot.BuildSegmentBlob(layout.name, fmt.Sprintf("%s_%d", layout.name, si),
				schema, layout.idx, d.Rows(si), nil)
			if err != nil {
				log.Fatal(err)
			}
			if err := c.UploadSegment(layout.name+"_OFFLINE", blob); err != nil {
				log.Fatal(err)
			}
		}
		if err := c.WaitForOnline(layout.name+"_OFFLINE", d.NumSegments, 10*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	// The WVMP page for member 17: who viewed me, from where, how senior?
	queries := []string{
		"SELECT count(*), distinctcount(viewerId) FROM %s WHERE vieweeId = 17",
		"SELECT count(*) FROM %s WHERE vieweeId = 17 GROUP BY region TOP 5",
		"SELECT count(*) FROM %s WHERE vieweeId = 17 GROUP BY seniority TOP 5",
	}
	for _, tmpl := range queries {
		fmt.Printf("\n> %s\n", fmt.Sprintf(tmpl, "wvmp*"))
		for _, tbl := range []string{"wvmpsorted", "wvmpinverted"} {
			q := fmt.Sprintf(tmpl, tbl)
			start := time.Now()
			res, err := c.Query(context.Background(), q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-13s entriesScanned=%-8d latency=%-10s rows=%v\n",
				tbl+":", res.Stats.NumEntriesScanned, time.Since(start).Round(time.Microsecond), res.Rows)
		}
	}
	fmt.Println("\nThe sorted layout reads only the contiguous vieweeId range;")
	fmt.Println("the inverted layout walks bitmap postings for the same answer.")
}
