// Quickstart: start an embedded cluster, create an offline table, upload a
// segment and run PQL queries.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pinot"
)

func main() {
	// 1. Start an embedded cluster: 1 controller, 2 servers, 1 broker.
	c, err := pinot.NewCluster(pinot.ClusterOptions{Servers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	// 2. Define a schema: dimensions, metrics and a time column.
	schema, err := pinot.NewSchema("pageviews", []pinot.FieldSpec{
		{Name: "page", Type: pinot.TypeString, Kind: pinot.Dimension, SingleValue: true},
		{Name: "country", Type: pinot.TypeString, Kind: pinot.Dimension, SingleValue: true},
		{Name: "views", Type: pinot.TypeLong, Kind: pinot.Metric, SingleValue: true},
		{Name: "day", Type: pinot.TypeLong, Kind: pinot.Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create the table.
	err = c.AddTable(&pinot.TableConfig{
		Name: "pageviews", Type: pinot.Offline, Schema: schema, Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Build and upload a segment.
	pages := []string{"/home", "/jobs", "/feed", "/profile"}
	countries := []string{"us", "de", "in", "br"}
	var rows []pinot.Row
	for i := 0; i < 10000; i++ {
		rows = append(rows, pinot.Row{
			pages[i%len(pages)],
			countries[(i/7)%len(countries)],
			int64(1 + i%9),
			int64(19000 + i%7),
		})
	}
	blob, err := pinot.BuildSegmentBlob("pageviews", "pageviews_0", schema,
		pinot.IndexConfig{InvertedColumns: []string{"page", "country"}}, rows, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.UploadSegment("pageviews_OFFLINE", blob); err != nil {
		log.Fatal(err)
	}
	if err := c.WaitForOnline("pageviews_OFFLINE", 1, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// 5. Query.
	for _, q := range []string{
		"SELECT count(*) FROM pageviews",
		"SELECT sum(views) FROM pageviews WHERE country = 'us' GROUP BY page TOP 5",
		"SELECT page, views FROM pageviews WHERE day = 19003 ORDER BY views DESC LIMIT 3",
	} {
		res, err := c.Query(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n> %s\n  columns: %v\n", q, res.Columns)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
		fmt.Printf("  (%d docs scanned across %d segments in %d ms)\n",
			res.Stats.NumDocsScanned, res.Stats.NumSegmentsQueried, res.TimeMillis)
	}
}
