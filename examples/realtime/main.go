// Realtime + hybrid: the impression-discounting scenario (paper sections
// 3.3.3, 3.3.6 and 6). Events stream into a realtime table and become
// queryable within milliseconds; consuming segments roll over through the
// replica segment-completion protocol; an offline table holds the batch
// history; and the broker transparently merges both around the time
// boundary.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"pinot"
)

func main() {
	c, err := pinot.NewCluster(pinot.ClusterOptions{Servers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	schema, err := pinot.NewSchema("impressions", []pinot.FieldSpec{
		{Name: "memberId", Type: pinot.TypeLong, Kind: pinot.Dimension, SingleValue: true},
		{Name: "itemId", Type: pinot.TypeLong, Kind: pinot.Dimension, SingleValue: true},
		{Name: "count", Type: pinot.TypeLong, Kind: pinot.Metric, SingleValue: true},
		{Name: "day", Type: pinot.TypeLong, Kind: pinot.Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline history: days 100..104 pushed from the batch pipeline.
	if err := c.AddTable(&pinot.TableConfig{
		Name: "impressions", Type: pinot.Offline, Schema: schema, Replicas: 1,
		SortColumn: "memberId",
	}); err != nil {
		log.Fatal(err)
	}
	var offline []pinot.Row
	for i := 0; i < 5000; i++ {
		offline = append(offline, pinot.Row{int64(i % 100), int64(i % 500), int64(1), int64(100 + i%5)})
	}
	blob, err := pinot.BuildSegmentBlob("impressions", "impressions_hist", schema,
		pinot.IndexConfig{SortColumn: "memberId"}, offline, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.UploadSegment("impressions_OFFLINE", blob); err != nil {
		log.Fatal(err)
	}
	if err := c.WaitForOnline("impressions_OFFLINE", 1, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// Realtime side: events stream in and flush every 2000 rows.
	if err := c.CreateStreamTopic("impressions", 2); err != nil {
		log.Fatal(err)
	}
	if err := c.AddTable(&pinot.TableConfig{
		Name: "impressions", Type: pinot.Realtime, Schema: schema, Replicas: 2,
		StreamTopic: "impressions", FlushThresholdRows: 2000,
	}); err != nil {
		log.Fatal(err)
	}
	if err := c.WaitForConsuming("impressions_REALTIME", 2, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// A news-feed view fires events for member 42 (day >= 104 overlaps
	// the offline boundary; the broker rewrite prevents double counting).
	produce := func(member, item int64, day int64) {
		msg, _ := json.Marshal(map[string]any{"memberId": member, "itemId": item, "count": 1, "day": day})
		if err := c.Produce("impressions", []byte(fmt.Sprint(member)), msg); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	for i := 0; i < 50; i++ {
		produce(42, int64(9000+i), 104+int64(i%3))
	}

	// Freshness: the events are queryable in near realtime.
	freshQ := "SELECT count(*) FROM impressions WHERE memberId = 42 AND itemId >= 9000"
	for {
		res, err := c.Query(context.Background(), freshQ)
		if err != nil {
			log.Fatal(err)
		}
		if res.Rows[0][0].(int64) == 50 {
			fmt.Printf("50 streamed events visible after %s\n", time.Since(start).Round(time.Millisecond))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hybrid query: history + realtime merged around the time boundary.
	res, err := c.Query(context.Background(), "SELECT count(*) FROM impressions WHERE memberId = 42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid count for member 42 (offline history + realtime): %v\n", res.Rows[0][0])
	// Completeness accounting: with no injected faults every scatter group
	// answers, so the result is complete, not partial.
	fmt.Printf("scatter groups responded: %d/%d (partial=%v)\n",
		res.ServersResponded, res.ServersQueried, res.Partial)

	// Push past the flush threshold: consuming segments commit through
	// the HOLD/CATCHUP/COMMIT protocol and roll to the next sequence.
	fmt.Println("streaming 6000 more events to trigger segment completion...")
	for i := 0; i < 6000; i++ {
		produce(int64(i%100), int64(i%500), 105)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		res, err := c.Query(context.Background(), "SELECT count(*) FROM impressions WHERE day >= 104")
		if err == nil && res.Rows[0][0].(int64) >= 6050 {
			fmt.Printf("all streamed rows durable and queryable: %v realtime-era rows\n", res.Rows[0][0])
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("segment completion did not converge")
}
