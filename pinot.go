// Package pinot is a from-scratch Go reproduction of "Pinot: Realtime OLAP
// for 530 Million Users" (Im et al., SIGMOD 2018): a distributed OLAP store
// with columnar segments, inverted / sorted-column / star-tree indexes, a
// SQL-subset query language (PQL), near-realtime stream ingestion with a
// replica segment-completion protocol, Helix-style cluster management,
// broker scatter/gather with balanced, large-cluster and partition-aware
// routing, hybrid offline+realtime tables, retention management, minion
// maintenance tasks and multitenant token-bucket scheduling.
//
// The package is a facade over the internal subsystems. Quick start:
//
//	c, _ := pinot.NewCluster(pinot.ClusterOptions{Servers: 2})
//	defer c.Shutdown()
//	schema, _ := pinot.NewSchema("events", []pinot.FieldSpec{
//		{Name: "country", Type: pinot.TypeString, Kind: pinot.Dimension, SingleValue: true},
//		{Name: "clicks", Type: pinot.TypeLong, Kind: pinot.Metric, SingleValue: true},
//		{Name: "day", Type: pinot.TypeLong, Kind: pinot.Time, SingleValue: true},
//	})
//	c.AddTable(&pinot.TableConfig{Name: "events", Type: pinot.Offline, Schema: schema, Replicas: 1})
//	blob, _ := pinot.BuildSegmentBlob("events", "events_0", schema, pinot.IndexConfig{}, rows, nil)
//	c.UploadSegment("events_OFFLINE", blob)
//	c.WaitForOnline("events_OFFLINE", 1, 5*time.Second)
//	res, _ := c.Query(context.Background(), "SELECT sum(clicks) FROM events GROUP BY country")
package pinot

import (
	"context"
	"time"

	"pinot/internal/broker"
	"pinot/internal/cluster"
	"pinot/internal/controller"
	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/server"
	"pinot/internal/startree"
	"pinot/internal/table"
)

// Re-exported schema and table types.
type (
	// Schema is a table's fixed column layout.
	Schema = segment.Schema
	// FieldSpec describes one column.
	FieldSpec = segment.FieldSpec
	// DataType is a column's declared type.
	DataType = segment.DataType
	// FieldKind distinguishes dimensions, metrics and the time column.
	FieldKind = segment.FieldKind
	// Row is a record aligned with a schema.
	Row = segment.Row
	// IndexConfig selects a segment's physical layout.
	IndexConfig = segment.IndexConfig
	// Segment is an immutable columnar record collection.
	Segment = segment.Segment
	// TableConfig configures a table.
	TableConfig = table.Config
	// TableType distinguishes offline and realtime tables.
	TableType = table.Type
	// StarTreeConfig configures a star-tree index.
	StarTreeConfig = startree.Config
	// Result is a finalized query response.
	Result = query.Result
	// Response is a broker query response.
	Response = broker.Response
	// Stats are per-query execution statistics.
	Stats = query.Stats
	// Task is a minion maintenance task.
	Task = controller.Task
)

// Column data types.
const (
	TypeInt     = segment.TypeInt
	TypeLong    = segment.TypeLong
	TypeFloat   = segment.TypeFloat
	TypeDouble  = segment.TypeDouble
	TypeString  = segment.TypeString
	TypeBoolean = segment.TypeBoolean
)

// Column kinds.
const (
	Dimension = segment.Dimension
	Metric    = segment.Metric
	Time      = segment.Time
)

// Table types.
const (
	Offline  = table.Offline
	Realtime = table.Realtime
)

// NewSchema validates and builds a schema.
func NewSchema(name string, fields []FieldSpec) (*Schema, error) {
	return segment.NewSchema(name, fields)
}

// BuildSegmentBlob builds an immutable segment from rows (applying the index
// config and optional star-tree) and serializes it for upload.
func BuildSegmentBlob(tableName, segmentName string, schema *Schema, idx IndexConfig, rows []Row, st *StarTreeConfig) ([]byte, error) {
	b, err := segment.NewBuilder(tableName, segmentName, schema, idx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := b.Add(r); err != nil {
			return nil, err
		}
	}
	seg, err := b.Build()
	if err != nil {
		return nil, err
	}
	if st != nil {
		tree, err := startree.Build(seg, *st)
		if err != nil {
			return nil, err
		}
		data, err := tree.Marshal()
		if err != nil {
			return nil, err
		}
		seg.SetStarTreeData(data)
	}
	return seg.Marshal()
}

// ClusterOptions sizes an embedded cluster.
type ClusterOptions struct {
	// Name of the cluster (defaults to "pinot").
	Name string
	// Controllers, Servers, Brokers, Minions count the instances of each
	// component (defaults: 1 controller, 1 server, 1 broker, 0 minions).
	Controllers int
	Servers     int
	Brokers     int
	Minions     int
	// RoutingStrategy selects the broker routing strategy: "balanced"
	// (default) or "largeCluster".
	RoutingStrategy string
	// TargetServersPerQuery bounds the large-cluster routing fan-out.
	TargetServersPerQuery int
	// PartitionAwareRouting enables partition pruning on brokers.
	PartitionAwareRouting bool
	// TenantTokens/TenantRefill enable per-tenant token buckets on
	// servers (seconds of execution time; zero disables).
	TenantTokens float64
	TenantRefill float64
}

// Cluster is an embedded multi-node Pinot deployment running in-process.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster starts an embedded cluster.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	inner, err := cluster.NewLocal(cluster.Options{
		Name:        opts.Name,
		Controllers: opts.Controllers,
		Servers:     opts.Servers,
		Brokers:     opts.Brokers,
		Minions:     opts.Minions,
		ServerTemplate: server.Config{
			TenantTokens: opts.TenantTokens,
			TenantRefill: opts.TenantRefill,
		},
		BrokerTemplate: broker.Config{
			Strategy:       broker.Strategy(opts.RoutingStrategy),
			TargetServers:  opts.TargetServersPerQuery,
			PartitionAware: opts.PartitionAwareRouting,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Shutdown stops every component.
func (c *Cluster) Shutdown() { c.inner.Shutdown() }

// Internal exposes the underlying cluster for advanced wiring (HTTP
// frontends, benchmarks).
func (c *Cluster) Internal() *cluster.Cluster { return c.inner }

// AddTable admits a table.
func (c *Cluster) AddTable(cfg *TableConfig) error { return c.inner.AddTable(cfg) }

// CreateStreamTopic creates a partitioned event topic for realtime tables.
func (c *Cluster) CreateStreamTopic(name string, partitions int) error {
	_, err := c.inner.Streams.CreateTopic(name, partitions)
	return err
}

// Produce appends a JSON-encoded event to a stream topic, partitioned by
// key.
func (c *Cluster) Produce(topic string, key, value []byte) error {
	th, err := c.inner.Streams.Topic(topic)
	if err != nil {
		return err
	}
	th.Produce(key, value)
	return nil
}

// UploadSegment pushes a segment blob to a table resource (e.g.
// "events_OFFLINE").
func (c *Cluster) UploadSegment(resource string, blob []byte) error {
	return c.inner.UploadSegment(resource, blob)
}

// WaitForOnline blocks until count segments of the resource are queryable.
func (c *Cluster) WaitForOnline(resource string, count int, timeout time.Duration) error {
	return c.inner.WaitForOnline(resource, count, timeout)
}

// WaitForConsuming blocks until count consuming segments are live.
func (c *Cluster) WaitForConsuming(resource string, count int, timeout time.Duration) error {
	return c.inner.WaitForConsuming(resource, count, timeout)
}

// Query executes PQL through a broker.
func (c *Cluster) Query(ctx context.Context, pql string) (*Response, error) {
	return c.inner.Execute(ctx, pql)
}

// QueryAs executes PQL charging the given tenant's token bucket.
func (c *Cluster) QueryAs(ctx context.Context, pql, tenant string) (*Response, error) {
	return c.inner.Broker().Execute(ctx, pql, tenant)
}

// ScheduleTask enqueues a minion task (purge, reindex) on the lead
// controller.
func (c *Cluster) ScheduleTask(t *Task) error {
	leader, err := c.inner.WaitForLeader(5 * time.Second)
	if err != nil {
		return err
	}
	return leader.ScheduleTask(t)
}
