GO ?= go

.PHONY: all build vet test race verify fmt-check bench-smoke bench-check bench-json cover fuzz clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verify: what CI and the roadmap require to stay green. bench-check
# proves benchmarks still compile, execute, and that none of the committed
# baseline's benchmarks silently disappeared; it never compares timings.
# cover enforces the per-package floors of COVERAGE_baseline.json.
verify: build vet race fmt-check bench-check cover

# Headline A/B benchmarks the baseline must carry: the multi-level segment
# pruning pairs, the pooled gob-encode pair, the metrics-registry overhead
# pair, the TCP data-plane pair (loopback round trip, streamed-vs-
# buffered response decode), the multi-tier cache pair (result-cache
# cold vs warm, server aggregate cache under a Zipf workload), and the
# expression-pipeline pair (compiled kernels vs forced interpreter,
# timeBucket group-by), and the dictionary-space expression pair
# (probe-served predicate and memo-served group-by vs the forced row path).
BENCH_REQUIRED = \
	BenchmarkPruneTimeRangeOn BenchmarkPruneTimeRangeOff \
	BenchmarkPruneBloomEqOn BenchmarkPruneBloomEqOff \
	BenchmarkEncodeResponsePooled BenchmarkEncodeResponseFresh \
	BenchmarkQueryMetricsOn BenchmarkQueryMetricsOff \
	BenchmarkTransportLoopbackQuery BenchmarkStreamVsBuffered \
	BenchmarkResultCacheColdVsWarm BenchmarkServerAggCacheZipf \
	BenchmarkExprCompiledVsInterp BenchmarkTimeBucketGroupBy \
	BenchmarkDictExprPredicate BenchmarkDictExprGroupBy

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

bench-check:
	$(GO) test -run NONE -bench . -benchtime 1x ./... > .bench-run.txt
	$(GO) run ./cmd/benchcheck BENCH_baseline.json $(BENCH_REQUIRED) < .bench-run.txt
	@rm -f .bench-run.txt

# Coverage gate: every package listed in COVERAGE_baseline.json must stay at
# or above its floor (cmd/covercheck).
cover:
	$(GO) test -count=1 -cover ./... > .cover-run.txt
	$(GO) run ./cmd/covercheck COVERAGE_baseline.json < .cover-run.txt
	@rm -f .cover-run.txt

# Regenerate the committed benchmark baseline for the vectorized-execution
# kernels (A/B pairs plus the micro kernels they are built from), the
# segment-pruning pairs, the transport encode pool pair, the metrics-registry
# overhead pair, and the TCP data-plane benchmarks.
bench-json:
	$(GO) test -run NONE -bench 'Vec|Scalar|Packed|Bitmap|Prune|EncodeResponse|QueryMetrics|TransportLoopback|StreamVsBuffered|ResultCacheColdVsWarm|ServerAggCacheZipf|ExprCompiledVsInterp|TimeBucketGroupBy|DictExpr|IDSetFromList' -benchtime 100x ./... | $(GO) run ./cmd/benchfmt > BENCH_baseline.json

# Short fuzz passes over the hostile-input surfaces: the transport decoders
# (buffered whole-response payload, framed wire protocol), the PQL parser
# (never panic; accepted input must canonicalize to a re-parseable fixpoint),
# and the expression evaluator (sandbox limits hold; compiled kernels agree
# with the interpreter).
fuzz:
	$(GO) test ./internal/transport -run NONE -fuzz=FuzzDecodeResponse -fuzztime=10s
	$(GO) test ./internal/transport -run NONE -fuzz=FuzzDecodeFrame -fuzztime=10s
	$(GO) test ./internal/pql -run NONE -fuzz=FuzzParsePQL -fuzztime=10s
	$(GO) test ./internal/expr -run NONE -fuzz=FuzzExprEval -fuzztime=10s

clean:
	$(GO) clean ./...
