GO ?= go

.PHONY: all build vet test race verify fuzz clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verify: what CI and the roadmap require to stay green.
verify: build vet race

# Short fuzz pass over the transport decoder.
fuzz:
	$(GO) test ./internal/transport -fuzz=FuzzDecodeResponse -fuzztime=10s

clean:
	$(GO) clean ./...
