GO ?= go

.PHONY: all build vet test race verify bench-smoke bench-json fuzz clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verify: what CI and the roadmap require to stay green. The bench
# smoke run only proves benchmarks still compile and execute, not timings.
verify: build vet race bench-smoke

bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Regenerate the committed benchmark baseline for the vectorized-execution
# kernels (A/B pairs plus the micro kernels they are built from).
bench-json:
	$(GO) test -run NONE -bench 'Vec|Scalar|Packed|Bitmap' -benchtime 100x ./... | $(GO) run ./cmd/benchfmt > BENCH_baseline.json

# Short fuzz pass over the transport decoder.
fuzz:
	$(GO) test ./internal/transport -fuzz=FuzzDecodeResponse -fuzztime=10s

clean:
	$(GO) clean ./...
