module pinot

go 1.24
